//! Session metrics: exactly the statistics RealTracer recorded per clip.
//!
//! The paper's definitions (Section V): measured frame rate is frames
//! played per second of playout; jitter is the standard deviation of
//! inter-frame playout times over the clip; bandwidth is the average
//! application receive rate.

use rv_player::{PlayoutEvent, PlayoutStats, ReassemblyStats};
use rv_rtsp::TransportKind;
use rv_sim::{SimDuration, SimTime};

/// How the session ended.
///
/// The taxonomy distinguishes every failure mode the resilient client can
/// observe, so the study's failure report can be broken down the way the
/// paper breaks down its unsuccessful-clip fraction (Section IV.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Played to the watch limit (or clip end) on the first attempt.
    Played,
    /// Played to the end, but only after recovering from faults: session
    /// retries, a UDP→TCP transport fallback, or both.
    PlayedDegraded {
        /// Full-session retry attempts that preceded the successful one.
        retries: u8,
        /// Rebuffer halts endured during the successful attempt.
        rebuffers: u8,
        /// Whether the client renegotiated UDP down to TCP mid-session.
        fell_back: bool,
    },
    /// The server reported the clip unavailable (404).
    Unavailable,
    /// RTSP was blocked by a firewall; the session never started.
    Blocked,
    /// Control-channel silence: connect or response timeouts exhausted the
    /// retry budget before playback ever started.
    TimedOut,
    /// The server refused the connection (RST to our SYN) — the process
    /// was down and stayed down through every retry, and no healthy
    /// replica remained for the gateway to offer.
    ServerDown,
    /// Every replica the gateway offered refused the SETUP at capacity
    /// (453 Not Enough Bandwidth): an admission rejection, not an outage
    /// — the cluster was up but full.
    Rejected,
    /// Data starvation after PLAY: the stream went silent and stayed
    /// silent past the stall limit, so the user gave up.
    Starved,
    /// An established session was torn down under the client (control or
    /// data connection reset mid-session) and retries could not revive it.
    Aborted,
    /// Some other protocol failure.
    Failed,
}

impl SessionOutcome {
    /// `true` for outcomes where the clip actually played to its end
    /// (possibly after retries or a transport fallback).
    pub fn is_played(self) -> bool {
        matches!(
            self,
            SessionOutcome::Played | SessionOutcome::PlayedDegraded { .. }
        )
    }

    /// Short stable label for reports and dumps.
    pub fn label(self) -> &'static str {
        match self {
            SessionOutcome::Played => "played",
            SessionOutcome::PlayedDegraded { .. } => "played-degraded",
            SessionOutcome::Unavailable => "unavailable",
            SessionOutcome::Blocked => "blocked",
            SessionOutcome::TimedOut => "timed-out",
            SessionOutcome::ServerDown => "server-down",
            SessionOutcome::Rejected => "rejected",
            SessionOutcome::Starved => "starved",
            SessionOutcome::Aborted => "aborted",
            SessionOutcome::Failed => "failed",
        }
    }
}

/// The per-clip statistics record RealTracer uploaded.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMetrics {
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// Data transport used.
    pub protocol: TransportKind,
    /// Encoded frame rate of the (final) stream rung.
    pub encoded_fps: f64,
    /// Encoded total bandwidth of the (final) rung, bits/second.
    pub encoded_bps: u32,
    /// Measured frame rate, frames/second of playout time.
    pub frame_rate: f64,
    /// Jitter: standard deviation of inter-frame playout gaps, ms
    /// (`None` with fewer than three played frames).
    pub jitter_ms: Option<f64>,
    /// Average receive bandwidth over the session, Kbits/second.
    pub bandwidth_kbps: f64,
    /// Frames played.
    pub frames_played: u64,
    /// Frames dropped (late + decode).
    pub frames_dropped: u64,
    /// Packets lost (sequence-gap estimate).
    pub packets_lost: u64,
    /// Frames rescued by FEC.
    pub frames_recovered: u64,
    /// Rebuffer halts.
    pub rebuffer_events: u64,
    /// Wall time spent halted.
    pub rebuffer_time: SimDuration,
    /// Startup delay: wall time from session start to first played frame.
    pub startup_delay: Option<SimDuration>,
    /// Fraction of wall time the (modeled) CPU spent decoding.
    pub cpu_utilization: f64,
    /// Wall duration from session start to finish.
    pub session_time: SimDuration,
    /// Replica that served the (final) attempt. Always 0 without a
    /// gateway; with one, the replica the session ended on.
    pub served_replica: u8,
    /// Wall time from the first crash-triggered gateway redirect to the
    /// first frame played afterwards — the failover recovery time. `None`
    /// when no failover happened (or playback never resumed).
    pub failover_recovery: Option<SimDuration>,
}

impl SessionMetrics {
    /// A record for a session that never produced data.
    pub fn failed(outcome: SessionOutcome, protocol: TransportKind) -> Self {
        SessionMetrics {
            outcome,
            protocol,
            encoded_fps: 0.0,
            encoded_bps: 0,
            frame_rate: 0.0,
            jitter_ms: None,
            bandwidth_kbps: 0.0,
            frames_played: 0,
            frames_dropped: 0,
            packets_lost: 0,
            frames_recovered: 0,
            rebuffer_events: 0,
            rebuffer_time: SimDuration::ZERO,
            startup_delay: None,
            cpu_utilization: 0.0,
            session_time: SimDuration::ZERO,
            served_replica: 0,
            failover_recovery: None,
        }
    }
}

/// Computes jitter: the standard deviation of inter-playout intervals, ms.
///
/// Returns `None` with fewer than three played frames (fewer than two
/// intervals — a standard deviation needs at least two samples).
pub fn jitter_ms(events: &[PlayoutEvent]) -> Option<f64> {
    let played: Vec<SimTime> = events.iter().filter_map(|e| e.played_at).collect();
    if played.len() < 3 {
        return None;
    }
    let gaps: Vec<f64> = played
        .windows(2)
        .map(|w| w[1].saturating_since(w[0]).as_secs_f64() * 1e3)
        .collect();
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
    Some(var.sqrt())
}

/// Assembles the full metrics record at session end.
#[allow(clippy::too_many_arguments)]
pub fn finalize(
    outcome: SessionOutcome,
    protocol: TransportKind,
    encoded_fps: f64,
    encoded_bps: u32,
    events: &[PlayoutEvent],
    playout: PlayoutStats,
    reassembly: ReassemblyStats,
    session_start: SimTime,
    session_end: SimTime,
) -> SessionMetrics {
    let session_time = session_end.saturating_since(session_start);
    let playout_time = playout
        .playback_started_at
        .map(|s| {
            session_end
                .saturating_since(s)
                .saturating_sub(playout.rebuffer_time)
        })
        .unwrap_or(SimDuration::ZERO);
    let frame_rate = if playout_time.is_zero() {
        0.0
    } else {
        playout.frames_played as f64 / playout_time.as_secs_f64()
    };
    let bandwidth_kbps = if session_time.is_zero() {
        0.0
    } else {
        reassembly.bytes_received as f64 * 8.0 / session_time.as_secs_f64() / 1e3
    };
    let first_play = events.iter().find_map(|e| e.played_at);
    SessionMetrics {
        outcome,
        protocol,
        encoded_fps,
        encoded_bps,
        frame_rate,
        jitter_ms: jitter_ms(events),
        bandwidth_kbps,
        frames_played: playout.frames_played,
        frames_dropped: playout.dropped_late + playout.dropped_decode,
        packets_lost: reassembly.packets_lost,
        frames_recovered: reassembly.frames_recovered,
        rebuffer_events: playout.rebuffer_events,
        rebuffer_time: playout.rebuffer_time,
        startup_delay: first_play.map(|t| t.saturating_since(session_start)),
        cpu_utilization: if session_time.is_zero() {
            0.0
        } else {
            (playout.decode_busy.as_secs_f64() / session_time.as_secs_f64()).min(1.0)
        },
        session_time,
        served_replica: 0,
        failover_recovery: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn played(at_ms: u64) -> PlayoutEvent {
        PlayoutEvent {
            frame_index: at_ms as u32,
            rung: 0,
            pts: SimDuration::from_millis(at_ms),
            played_at: Some(SimTime::from_millis(at_ms)),
            drop_reason: None,
        }
    }

    /// Every variant of the taxonomy, exactly once.
    fn all_outcomes() -> [SessionOutcome; 10] {
        [
            SessionOutcome::Played,
            SessionOutcome::PlayedDegraded {
                retries: 2,
                rebuffers: 1,
                fell_back: true,
            },
            SessionOutcome::Unavailable,
            SessionOutcome::Blocked,
            SessionOutcome::TimedOut,
            SessionOutcome::ServerDown,
            SessionOutcome::Rejected,
            SessionOutcome::Starved,
            SessionOutcome::Aborted,
            SessionOutcome::Failed,
        ]
    }

    #[test]
    fn outcome_labels_are_distinct_and_stable() {
        let outcomes = all_outcomes();
        let labels: std::collections::BTreeSet<&str> = outcomes.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), outcomes.len(), "labels must be unique");
        assert!(labels.contains("played"));
        assert!(labels.contains("played-degraded"));
        assert!(labels.contains("server-down"));
        // Labels feed dumps and reports: no whitespace, no uppercase.
        for l in labels {
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{l}");
        }
    }

    #[test]
    fn only_played_variants_count_as_played() {
        for o in all_outcomes() {
            let expect = matches!(
                o,
                SessionOutcome::Played | SessionOutcome::PlayedDegraded { .. }
            );
            assert_eq!(o.is_played(), expect, "{o:?}");
        }
    }

    #[test]
    fn jitter_zero_for_perfectly_even_playout() {
        let events: Vec<PlayoutEvent> = (0..20).map(|i| played(i * 100)).collect();
        assert_eq!(jitter_ms(&events), Some(0.0));
    }

    #[test]
    fn jitter_none_for_too_few_frames() {
        assert_eq!(jitter_ms(&[]), None);
        assert_eq!(jitter_ms(&[played(0), played(100)]), None);
    }

    #[test]
    fn jitter_measures_variance() {
        // Gaps of 50 and 150 ms around a 100 ms mean → stddev 50 ms.
        let events = vec![played(0), played(50), played(200)];
        let j = jitter_ms(&events).unwrap();
        assert!((j - 50.0).abs() < 1e-9, "jitter {j}");
    }

    #[test]
    fn jitter_ignores_dropped_frames() {
        let mut events: Vec<PlayoutEvent> = (0..10).map(|i| played(i * 100)).collect();
        events.insert(
            5,
            PlayoutEvent {
                frame_index: 999,
                rung: 0,
                pts: SimDuration::from_millis(450),
                played_at: None,
                drop_reason: Some(rv_player::DropReason::Late),
            },
        );
        assert_eq!(jitter_ms(&events), Some(0.0));
    }

    #[test]
    fn finalize_computes_rates() {
        let events: Vec<PlayoutEvent> = (0..100).map(|i| played(10_000 + i * 100)).collect();
        let playout = PlayoutStats {
            frames_played: 100,
            playback_started_at: Some(SimTime::from_secs(10)),
            ..PlayoutStats::default()
        };
        let reassembly = ReassemblyStats {
            bytes_received: 75_000, // over 20 s → 30 kbps
            ..ReassemblyStats::default()
        };
        let m = finalize(
            SessionOutcome::Played,
            TransportKind::Udp,
            15.0,
            80_000,
            &events,
            playout,
            reassembly,
            SimTime::ZERO,
            SimTime::from_secs(20),
        );
        // 100 frames over 10 s of playout.
        assert!((m.frame_rate - 10.0).abs() < 1e-9);
        assert!((m.bandwidth_kbps - 30.0).abs() < 1e-9);
        assert_eq!(m.startup_delay, Some(SimDuration::from_secs(10)));
        assert_eq!(m.jitter_ms, Some(0.0));
    }

    #[test]
    fn finalize_handles_never_started() {
        let m = finalize(
            SessionOutcome::Played,
            TransportKind::Tcp,
            15.0,
            80_000,
            &[],
            PlayoutStats::default(),
            ReassemblyStats::default(),
            SimTime::ZERO,
            SimTime::from_secs(20),
        );
        assert_eq!(m.frame_rate, 0.0);
        assert_eq!(m.startup_delay, None);
    }

    #[test]
    fn rebuffer_time_excluded_from_playout_time() {
        let playout = PlayoutStats {
            frames_played: 50,
            playback_started_at: Some(SimTime::from_secs(10)),
            rebuffer_time: SimDuration::from_secs(5),
            rebuffer_events: 1,
            ..PlayoutStats::default()
        };
        let m = finalize(
            SessionOutcome::Played,
            TransportKind::Udp,
            15.0,
            80_000,
            &[],
            playout,
            ReassemblyStats::default(),
            SimTime::ZERO,
            SimTime::from_secs(20),
        );
        // 50 frames over (10 - 5) s.
        assert!((m.frame_rate - 10.0).abs() < 1e-9);
        assert_eq!(m.rebuffer_events, 1);
    }

    #[test]
    fn failed_record_is_empty() {
        let m = SessionMetrics::failed(SessionOutcome::Unavailable, TransportKind::Tcp);
        assert_eq!(m.outcome, SessionOutcome::Unavailable);
        assert_eq!(m.frames_played, 0);
        assert_eq!(m.jitter_ms, None);
    }
}
