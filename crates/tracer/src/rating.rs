//! The perceptual quality rating model.
//!
//! The paper's users rated clips 0–10 and the headline findings about those
//! ratings (Section V.C) are *negative*: the overall rating CDF is nearly
//! uniform with mean ≈ 5 ("normalization"), there is little visible
//! correlation with any single system metric, except that high-bandwidth
//! clips never rate low and there is a slight upward trend with bandwidth.
//! The model encodes exactly the effects the authors describe:
//!
//! * a *system* component driven by frame rate (the [Rea00a] legibility
//!   bands), jitter, and rebuffering;
//! * a per-user bias and scale ("users came up with criteria of their own");
//! * an audio/video confusion term — some users rated audio+video, which
//!   flattens differences at low video bandwidth (audio survives when video
//!   does not);
//! * heavy per-clip noise (subject-matter effects).
//!
//! The model's free parameters are set from the paper's own observations;
//! EXPERIMENTS.md flags Figures 26–28 as model-reproductions, not
//! independent measurements.

use rv_sim::SimRng;

use crate::metrics::SessionMetrics;

/// A user's personal rating disposition, drawn once per user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaterProfile {
    /// Additive bias (grumpy vs. generous), typically in [-2.5, 2.5].
    pub bias: f64,
    /// How strongly system quality moves this user's score, in [0.3, 1.4].
    pub sensitivity: f64,
    /// Whether the user rated audio+video rather than video alone.
    pub rates_audio_too: bool,
}

impl RaterProfile {
    /// Draws a profile from the population distribution.
    pub fn sample(rng: &mut SimRng) -> RaterProfile {
        RaterProfile {
            bias: rng.normal(0.0, 1.6).clamp(-3.0, 3.0),
            sensitivity: rng.range(0.3..1.4),
            // The paper notes several users asked about this; assume a
            // sizable minority rated audio+video together.
            rates_audio_too: rng.chance(0.4),
        }
    }
}

/// System-quality score in [0, 10] from the measured metrics alone.
///
/// Frame-rate bands follow the paper's legibility thresholds: below 3 fps
/// a clip is a slideshow, 7 fps very choppy, 15 fps smooth, 24+ full
/// motion.
pub fn system_score(m: &SessionMetrics) -> f64 {
    let fps_score = if m.frame_rate >= 24.0 {
        9.0
    } else if m.frame_rate >= 15.0 {
        7.5 + 1.5 * (m.frame_rate - 15.0) / 9.0
    } else if m.frame_rate >= 7.0 {
        5.5 + 2.0 * (m.frame_rate - 7.0) / 8.0
    } else if m.frame_rate >= 3.0 {
        3.5 + 2.0 * (m.frame_rate - 3.0) / 4.0
    } else {
        1.0 + 2.5 * m.frame_rate / 3.0
    };
    // Jitter penalty: imperceptible below 50 ms, severe beyond 300 ms.
    let jitter_penalty = match m.jitter_ms {
        Some(j) if j > 300.0 => 2.5,
        Some(j) if j > 50.0 => 2.5 * (j - 50.0) / 250.0,
        _ => 0.0,
    };
    // Rebuffer halts are the most annoying event of all.
    let rebuffer_penalty = (m.rebuffer_events as f64).min(3.0);
    (fps_score - jitter_penalty - rebuffer_penalty).clamp(0.0, 10.0)
}

/// Produces the 0–10 rating a given user gives a given session.
pub fn rate(m: &SessionMetrics, profile: &RaterProfile, rng: &mut SimRng) -> u8 {
    let mut score = system_score(m);

    if profile.rates_audio_too {
        // Audio quality tracks bandwidth loosely and survives low video
        // rates; blending it pulls scores toward the middle.
        let audio = (4.0 + (m.bandwidth_kbps / 60.0).min(4.0)).min(8.0);
        score = 0.55 * score + 0.45 * audio;
    }

    // Normalization: users center their personal scale near 5.
    let centered = 5.0 + profile.sensitivity * (score - 5.0) + profile.bias;
    // Subject-matter noise dominates (interesting clip, boring clip...).
    let noisy = centered + rng.normal(0.0, 1.7);
    noisy.round().clamp(0.0, 10.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SessionOutcome;
    use rv_rtsp::TransportKind;
    use rv_sim::SimDuration;

    fn metrics(fps: f64, jitter: Option<f64>, kbps: f64, rebuffers: u64) -> SessionMetrics {
        SessionMetrics {
            outcome: SessionOutcome::Played,
            protocol: TransportKind::Udp,
            encoded_fps: 15.0,
            encoded_bps: 150_000,
            frame_rate: fps,
            jitter_ms: jitter,
            bandwidth_kbps: kbps,
            frames_played: 100,
            frames_dropped: 0,
            packets_lost: 0,
            frames_recovered: 0,
            rebuffer_events: rebuffers,
            rebuffer_time: SimDuration::ZERO,
            startup_delay: None,
            cpu_utilization: 0.1,
            session_time: SimDuration::from_secs(60),
            served_replica: 0,
            failover_recovery: None,
        }
    }

    #[test]
    fn system_score_monotone_in_fps() {
        let fps = [0.5, 2.0, 5.0, 10.0, 16.0, 25.0];
        let scores: Vec<f64> = fps
            .iter()
            .map(|f| system_score(&metrics(*f, Some(20.0), 200.0, 0)))
            .collect();
        for w in scores.windows(2) {
            assert!(w[1] > w[0], "scores not monotone: {scores:?}");
        }
    }

    #[test]
    fn jitter_and_rebuffers_hurt() {
        let clean = system_score(&metrics(15.0, Some(20.0), 200.0, 0));
        let jittery = system_score(&metrics(15.0, Some(400.0), 200.0, 0));
        let halting = system_score(&metrics(15.0, Some(20.0), 200.0, 2));
        assert!(jittery < clean - 2.0);
        assert!(halting < clean - 1.5);
    }

    #[test]
    fn score_bounded() {
        assert!(system_score(&metrics(0.0, Some(3000.0), 1.0, 10)) >= 0.0);
        assert!(system_score(&metrics(30.0, Some(0.0), 500.0, 0)) <= 10.0);
    }

    #[test]
    fn ratings_have_population_mean_near_five() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut total = 0.0;
        let n = 4000;
        for _ in 0..n {
            let profile = RaterProfile::sample(&mut rng);
            // A spread of plausible sessions.
            let fps = rng.range(0.5..25.0);
            let jitter = rng.range(5.0..500.0);
            let kbps = rng.range(10.0..400.0);
            let rebuffers = if rng.chance(0.2) { 1 } else { 0 };
            let m = metrics(fps, Some(jitter), kbps, rebuffers);
            total += f64::from(rate(&m, &profile, &mut rng));
        }
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.8, "population mean {mean}");
    }

    #[test]
    fn high_bandwidth_rarely_rates_low() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut low_ratings = 0;
        let n = 2000;
        for _ in 0..n {
            let profile = RaterProfile::sample(&mut rng);
            let m = metrics(20.0, Some(20.0), 450.0, 0);
            if rate(&m, &profile, &mut rng) <= 2 {
                low_ratings += 1;
            }
        }
        assert!(
            (low_ratings as f64 / n as f64) < 0.05,
            "too many low ratings at high bandwidth: {low_ratings}/{n}"
        );
    }

    #[test]
    fn bandwidth_trend_is_positive_but_weak() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut lo_total = 0.0;
        let mut hi_total = 0.0;
        let n = 2000;
        for _ in 0..n {
            let profile = RaterProfile::sample(&mut rng);
            let lo = metrics(2.0, Some(300.0), 25.0, 1);
            let hi = metrics(18.0, Some(30.0), 350.0, 0);
            lo_total += f64::from(rate(&lo, &profile, &mut rng));
            hi_total += f64::from(rate(&hi, &profile, &mut rng));
        }
        let (lo_mean, hi_mean) = (lo_total / n as f64, hi_total / n as f64);
        assert!(hi_mean > lo_mean + 1.0, "lo {lo_mean} hi {hi_mean}");
        // ...but normalization keeps the gap modest (not 0 vs 10).
        assert!(hi_mean - lo_mean < 6.5, "lo {lo_mean} hi {hi_mean}");
    }

    #[test]
    fn rater_profiles_are_diverse() {
        let mut rng = SimRng::seed_from_u64(4);
        let profiles: Vec<RaterProfile> =
            (0..200).map(|_| RaterProfile::sample(&mut rng)).collect();
        let audio_raters = profiles.iter().filter(|p| p.rates_audio_too).count();
        assert!(audio_raters > 40 && audio_raters < 160);
        let biases: Vec<f64> = profiles.iter().map(|p| p.bias).collect();
        assert!(biases.iter().any(|b| *b > 1.0));
        assert!(biases.iter().any(|b| *b < -1.0));
    }
}
