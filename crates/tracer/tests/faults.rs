//! Fault-injection scenarios: one scripted world per failure mode in the
//! `SessionOutcome` taxonomy, exercising the resilient-client FSM end to
//! end (retry/backoff, UDP→TCP fallback, stall detection).

use rv_media::{Clip, ContentKind};
use rv_net::{LinkId, LinkParams};
use rv_rtsp::TransportKind;
use rv_sim::{
    FaultPlan, FaultSegment, LinkOutage, OutagePolicy, ServerCrash, SimDuration, SimTime,
};
use rv_tracer::{two_host_world, ClientConfig, FaultLinkMap, SessionOutcome, SessionWorld};

/// A broadband two-host world with the given fault plan armed. In the
/// two-host topology the single duplex pair is the client's access leg.
fn faulted_world(plan: &FaultPlan, cfg_fn: impl FnOnce(&mut ClientConfig)) -> SessionWorld {
    let params = LinkParams::lan()
        .rate(500_000.0)
        .delay(SimDuration::from_millis(40))
        .loss(0.0)
        .queue(64 * 1024);
    let clip = Clip::new("news1.rm", SimDuration::from_secs(300), ContentKind::News);
    let mut w = two_host_world(params, clip, 42, |c, _| cfg_fn(c));
    let map = FaultLinkMap {
        client_access: vec![LinkId(0), LinkId(1)],
        ..FaultLinkMap::default()
    };
    w.set_faults(plan, &map);
    w
}

fn outage(start: u64, end: u64, policy: OutagePolicy) -> FaultPlan {
    FaultPlan {
        link_outages: vec![LinkOutage {
            segment: FaultSegment::ClientAccess,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            policy,
        }],
        ..FaultPlan::none()
    }
}

#[test]
fn empty_plan_changes_nothing() {
    let m_plain = {
        let params = LinkParams::lan()
            .rate(500_000.0)
            .delay(SimDuration::from_millis(40))
            .loss(0.0)
            .queue(64 * 1024);
        let clip = Clip::new("news1.rm", SimDuration::from_secs(300), ContentKind::News);
        two_host_world(params, clip, 42, |_, _| {}).run(SimTime::from_secs(150))
    };
    let m_armed = faulted_world(&FaultPlan::none(), |_| {}).run(SimTime::from_secs(150));
    assert_eq!(m_plain, m_armed);
    assert_eq!(m_armed.outcome, SessionOutcome::Played);
}

#[test]
fn server_never_up_is_server_down() {
    let plan = FaultPlan {
        server_crashes: vec![ServerCrash {
            at: SimTime::ZERO,
            restart_after: None,
            replica: 0,
        }],
        ..FaultPlan::none()
    };
    let mut w = faulted_world(&plan, |_| {});
    let m = w.run(SimTime::from_secs(150));
    assert_eq!(m.outcome, SessionOutcome::ServerDown);
    assert_eq!(m.frames_played, 0);
    // Every connect was refused fast; the retry ledger must be exhausted
    // long before the session deadline.
    assert!(
        m.session_time < SimDuration::from_secs(60),
        "{}",
        m.session_time
    );
    assert_eq!(w.client.retries(), 3);
}

#[test]
fn crash_mid_play_with_restart_recovers_degraded() {
    let plan = FaultPlan {
        server_crashes: vec![ServerCrash {
            at: SimTime::from_secs(10),
            restart_after: Some(SimDuration::from_secs(3)),
            replica: 0,
        }],
        ..FaultPlan::none()
    };
    let mut w = faulted_world(&plan, |_| {});
    let m = w.run(SimTime::from_secs(150));
    match m.outcome {
        SessionOutcome::PlayedDegraded { retries, .. } => {
            assert!(retries >= 1, "expected at least one retry, got {retries}");
        }
        other => panic!("expected PlayedDegraded, got {other:?}"),
    }
    assert!(m.frames_played > 100, "played {}", m.frames_played);
}

#[test]
fn udp_blackhole_falls_back_to_tcp_and_plays() {
    let plan = FaultPlan {
        udp_blackhole: true,
        ..FaultPlan::none()
    };
    let mut w = faulted_world(&plan, |_| {});
    let m = w.run(SimTime::from_secs(150));
    assert!(w.client.fell_back(), "client must renegotiate transports");
    match m.outcome {
        SessionOutcome::PlayedDegraded { fell_back, .. } => assert!(fell_back),
        other => panic!("expected PlayedDegraded via fallback, got {other:?}"),
    }
    assert_eq!(m.protocol, TransportKind::Tcp);
    assert!(m.frames_played > 100, "played {}", m.frames_played);
}

#[test]
fn long_outage_mid_play_starves_the_session() {
    // Data dies at 12 s and never returns within the stall budget: the
    // playout buffer drains, the player rebuffers, and after 20 s of
    // silence the user gives up.
    let mut w = faulted_world(&outage(12, 140, OutagePolicy::DropInFlight), |_| {});
    let m = w.run(SimTime::from_secs(150));
    assert_eq!(m.outcome, SessionOutcome::Starved);
    assert!(m.frames_played > 0, "stream was live before the outage");
}

#[test]
fn outage_from_start_times_out_through_retries() {
    // The access link is dark from the first SYN: every connect attempt
    // (and every retry) dies in silence, so the session deadline
    // classifies the wedge as a control-plane timeout.
    let mut w = faulted_world(&outage(0, 400, OutagePolicy::DropInFlight), |c| {
        c.connect_timeout = SimDuration::from_secs(10);
    });
    let m = w.run(SimTime::from_secs(300));
    assert_eq!(m.outcome, SessionOutcome::TimedOut);
    assert_eq!(m.frames_played, 0);
    assert_eq!(w.client.retries(), 3);
}

#[test]
fn brief_carried_outage_only_degrades_playback() {
    // A short route flap that carries in-flight packets: the buffer
    // absorbs most of it; the session must still complete (possibly
    // rebuffering, never dying).
    let mut w = faulted_world(&outage(15, 19, OutagePolicy::CarryInFlight), |_| {});
    let m = w.run(SimTime::from_secs(150));
    assert!(
        m.outcome.is_played(),
        "short flap must not kill the session: {:?}",
        m.outcome
    );
    assert!(m.frames_played > 100, "played {}", m.frames_played);
}
