//! End-to-end session tests: server + network + client, full protocol flow.

use rv_media::{Clip, ContentKind};
use rv_net::{Addr, HostId, LinkParams, NetBuilder};
use rv_rtsp::{FirewallPolicy, TransportKind, TransportPreference};
use rv_server::{Catalog, RealServer, ServerConfig};
use rv_sim::{SimDuration, SimRng, SimTime};
use rv_tracer::{
    client_data_tcp_config, ports, two_host_world, ClientConfig, SessionOutcome, SessionWorld,
    TracerClient,
};
use rv_transport::{Segment, Stack, TcpConfig};

/// Builds a complete world over symmetric links of the given rate/delay.
fn world(
    rate_bps: f64,
    delay_ms: u64,
    loss: f64,
    cfg_fn: impl FnOnce(&mut ClientConfig, &mut ServerConfig),
) -> SessionWorld {
    let params = LinkParams::lan()
        .rate(rate_bps)
        .delay(SimDuration::from_millis(delay_ms))
        .loss(loss)
        .queue(64 * 1024);
    let clip = Clip::new("news1.rm", SimDuration::from_secs(300), ContentKind::News);
    two_host_world(params, clip, 42, cfg_fn)
}

#[test]
fn broadband_udp_session_plays_smoothly() {
    let mut w = world(500_000.0, 40, 0.0, |_, _| {});
    let m = w.run(SimTime::from_secs(150));
    assert_eq!(m.outcome, SessionOutcome::Played);
    assert_eq!(m.protocol, TransportKind::Udp);
    assert!(m.frames_played > 200, "played {}", m.frames_played);
    // A 500 kbps path sustains a mid/high rung: double-digit frame rate.
    assert!(m.frame_rate > 8.0, "frame rate {}", m.frame_rate);
    let jitter = m.jitter_ms.expect("enough frames for jitter");
    assert!(jitter < 100.0, "jitter {jitter} ms");
    assert_eq!(m.rebuffer_events, 0);
    assert!(m.bandwidth_kbps > 50.0, "bandwidth {}", m.bandwidth_kbps);
    // Startup delay reflects prebuffering, not instant play.
    let startup = m.startup_delay.expect("played frames");
    assert!(
        startup >= SimDuration::from_secs(2) && startup <= SimDuration::from_secs(25),
        "startup {startup}"
    );
}

#[test]
fn forced_tcp_session_also_plays() {
    let mut w = world(500_000.0, 40, 0.0, |c, _| {
        c.transport_pref = TransportPreference::ForceTcp;
    });
    let m = w.run(SimTime::from_secs(150));
    assert_eq!(m.outcome, SessionOutcome::Played);
    assert_eq!(m.protocol, TransportKind::Tcp);
    assert!(m.frame_rate > 8.0, "frame rate {}", m.frame_rate);
    assert!(m.jitter_ms.expect("jitter") < 150.0);
}

#[test]
fn udp_blocking_firewall_falls_back_to_tcp() {
    let mut w = world(500_000.0, 40, 0.0, |c, _| {
        c.firewall = FirewallPolicy::BlockUdp;
    });
    let m = w.run(SimTime::from_secs(150));
    assert_eq!(m.outcome, SessionOutcome::Played);
    assert_eq!(m.protocol, TransportKind::Tcp);
}

#[test]
fn server_preferring_tcp_downgrades_auto_clients() {
    let mut w = world(500_000.0, 40, 0.0, |_, s| {
        s.prefers_udp = false;
    });
    let m = w.run(SimTime::from_secs(150));
    assert_eq!(m.protocol, TransportKind::Tcp);
}

#[test]
fn rtsp_blocking_firewall_yields_blocked_record() {
    let mut w = world(500_000.0, 40, 0.0, |c, _| {
        c.firewall = FirewallPolicy::BlockRtsp;
    });
    let m = w.run(SimTime::from_secs(10));
    assert_eq!(m.outcome, SessionOutcome::Blocked);
    assert_eq!(m.frames_played, 0);
}

#[test]
fn modem_session_gets_low_but_nonzero_frame_rate() {
    // 50 kbps modem: only the lowest rung fits; frame rate must be far
    // below broadband but the clip still plays.
    let mut w = world(50_000.0, 120, 0.005, |c, _| {
        c.max_bandwidth_bps = 50_000;
    });
    let m = w.run(SimTime::from_secs(200));
    assert_eq!(m.outcome, SessionOutcome::Played);
    assert!(m.frames_played > 20, "played {}", m.frames_played);
    assert!(m.frame_rate < 10.0, "modem frame rate {}", m.frame_rate);
    assert!(
        m.bandwidth_kbps < 60.0,
        "modem bandwidth {}",
        m.bandwidth_kbps
    );
}

#[test]
fn unavailable_clip_reports_unavailable() {
    let mut b = NetBuilder::new();
    let client = b.host();
    let server = b.host();
    b.duplex(client, server, LinkParams::lan());
    let mut rng = SimRng::seed_from_u64(7);
    let net = b.build_with_payload::<Segment>(&mut rng);

    let mut client_stack = Stack::new(HostId(0));
    let mut server_stack = Stack::new(HostId(1));
    let s_ctrl = server_stack.tcp_socket(ports::CTRL, TcpConfig::default());
    let s_data = server_stack.tcp_socket(ports::DATA_TCP, TcpConfig::default());
    let s_udp = server_stack.udp_socket(ports::DATA_UDP);
    server_stack.tcp(s_ctrl).listen();
    server_stack.tcp(s_data).listen();
    let c_ctrl = client_stack.tcp_socket(ports::CLIENT_CTRL, TcpConfig::default());
    let c_data = client_stack.tcp_socket(ports::CLIENT_DATA, client_data_tcp_config());
    let c_udp = client_stack.udp_socket(ports::CLIENT_UDP);

    let mut catalog = Catalog::new();
    catalog.add(Clip::new(
        "news1.rm",
        SimDuration::from_secs(300),
        ContentKind::News,
    ));
    catalog.set_available("news1.rm", false);

    let server = RealServer::new(ServerConfig::default(), catalog, s_ctrl, s_data, s_udp, 1);
    let client_cfg = ClientConfig::new(
        "rtsp://server/news1.rm",
        Addr::new(HostId(1), ports::CTRL),
        Addr::new(HostId(1), ports::DATA_TCP),
    );
    let client = TracerClient::new(client_cfg, c_ctrl, c_data, c_udp);
    let mut w = SessionWorld::new(net, client_stack, server_stack, server, client);
    let m = w.run(SimTime::from_secs(30));
    assert_eq!(m.outcome, SessionOutcome::Unavailable);
}

#[test]
fn lossy_congested_path_drops_rate_but_survives() {
    let mut w = world(200_000.0, 80, 0.03, |_, _| {});
    let m = w.run(SimTime::from_secs(200));
    assert_eq!(m.outcome, SessionOutcome::Played);
    assert!(m.frames_played > 10, "played {}", m.frames_played);
    // Loss must be visible to the receiver accounting on UDP.
    if m.protocol == TransportKind::Udp {
        assert!(m.packets_lost > 0);
    }
}

#[test]
fn slow_pc_plays_fewer_frames_than_fast_pc() {
    let run = |cpu: f64| {
        let mut w = world(500_000.0, 40, 0.0, |c, _| {
            c.cpu_power = cpu;
        });
        w.run(SimTime::from_secs(150))
    };
    let fast = run(1.0);
    let slow = run(0.10);
    assert_eq!(slow.outcome, SessionOutcome::Played);
    assert!(
        slow.frame_rate < fast.frame_rate * 0.7,
        "slow {} vs fast {}",
        slow.frame_rate,
        fast.frame_rate
    );
    assert!(slow.cpu_utilization > fast.cpu_utilization);
}

#[test]
fn deterministic_given_same_seeds() {
    let run = || {
        let mut w = world(300_000.0, 60, 0.01, |_, _| {});
        w.run(SimTime::from_secs(150))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
