//! # rv-transport — TCP and UDP over the simulated network
//!
//! RealSystem streamed video over either TCP or UDP, negotiated at session
//! setup; the paper's Figures 16–18 and 24 compare the two. This crate
//! provides both from scratch: a Reno [`TcpSocket`] with real congestion
//! control and loss recovery, a fire-and-forget [`UdpSocket`], and a
//! per-host [`Stack`] that demultiplexes inbound packets and pumps segments
//! through an [`rv_net::Network`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod segment;
mod stack;
mod tcp;
mod udp;

pub use segment::{
    Segment, TcpFlags, TcpSegment, UdpDatagram, DEFAULT_MSS, TCP_HEADER_BYTES, UDP_HEADER_BYTES,
};
pub use stack::{Stack, TcpHandle, UdpHandle};
pub use tcp::{TcpConfig, TcpError, TcpSocket, TcpState, TcpStats};
pub use udp::{UdpSocket, UdpStats};
