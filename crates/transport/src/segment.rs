//! Transport-layer segments carried as `rv-net` packet payloads.
//!
//! Payloads are [`PayloadBytes`] — shared slices, not owned `Vec`s — so a
//! segment can window the sender's buffer without copying and survive
//! cloning through the network for free.

use rv_sim::PayloadBytes;

/// Header bytes added to every TCP segment (IP + TCP, no options).
pub const TCP_HEADER_BYTES: u32 = 40;
/// Header bytes added to every UDP datagram (IP + UDP).
pub const UDP_HEADER_BYTES: u32 = 28;
/// Default maximum segment size: Ethernet MTU minus headers.
pub const DEFAULT_MSS: u32 = 1460;

/// TCP control flags (the subset the simulator uses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// Synchronize sequence numbers (connection open).
    pub syn: bool,
    /// Acknowledgment field is valid.
    pub ack: bool,
    /// Sender has finished sending (connection close).
    pub fin: bool,
    /// Abort the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// A bare ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// An initial SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// The SYN+ACK reply.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
}

/// A TCP segment: sequence/ack numbers in byte space plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u64,
    /// Cumulative acknowledgment: next byte expected from the peer.
    pub ack: u64,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window advertisement, in bytes.
    pub window: u32,
    /// Application payload: a shared slice of the sender's buffer.
    pub data: PayloadBytes,
}

impl TcpSegment {
    /// Sequence space this segment occupies (data bytes, +1 for SYN, +1 for FIN).
    pub fn seq_len(&self) -> u64 {
        self.data.len() as u64 + u64::from(self.flags.syn) + u64::from(self.flags.fin)
    }

    /// The sequence number following this segment.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.seq_len()
    }

    /// On-the-wire size in bytes.
    pub fn wire_size(&self) -> u32 {
        TCP_HEADER_BYTES + self.data.len() as u32
    }
}

/// A UDP datagram: just bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Application payload: a shared slice of the sender's buffer.
    pub data: PayloadBytes,
}

impl UdpDatagram {
    /// On-the-wire size in bytes.
    pub fn wire_size(&self) -> u32 {
        UDP_HEADER_BYTES + self.data.len() as u32
    }
}

/// The payload type the transport layer installs into `rv_net::Network`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
}

impl Segment {
    /// On-the-wire size in bytes (headers + payload).
    pub fn wire_size(&self) -> u32 {
        match self {
            Segment::Tcp(s) => s.wire_size(),
            Segment::Udp(d) => d.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut seg = TcpSegment {
            seq: 100,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 0,
            data: PayloadBytes::empty(),
        };
        assert_eq!(seg.seq_len(), 1);
        assert_eq!(seg.seq_end(), 101);
        seg.flags = TcpFlags::ACK;
        seg.data = vec![0u8; 10].into();
        assert_eq!(seg.seq_len(), 10);
        seg.flags.fin = true;
        assert_eq!(seg.seq_len(), 11);
    }

    #[test]
    fn wire_sizes_include_headers() {
        let t = TcpSegment {
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            data: vec![0u8; 100].into(),
        };
        assert_eq!(t.wire_size(), 140);
        let u = UdpDatagram {
            data: vec![0u8; 100].into(),
        };
        assert_eq!(u.wire_size(), 128);
        assert_eq!(Segment::Tcp(t).wire_size(), 140);
        assert_eq!(Segment::Udp(u).wire_size(), 128);
    }
}
