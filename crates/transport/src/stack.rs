//! Per-host socket stack: owns a host's sockets, demultiplexes inbound
//! packets, and pumps outbound segments into the network.

use rv_net::{Addr, HostId, Network, Packet};
use rv_sim::{earliest, SimTime};

use crate::segment::{Segment, TcpFlags, TcpSegment};
use crate::tcp::{TcpConfig, TcpSocket, TcpState};
use crate::udp::UdpSocket;
use rv_sim::PayloadBytes;

/// Handle to a TCP socket within a [`Stack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHandle(usize);

/// Handle to a UDP socket within a [`Stack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHandle(usize);

/// The transport stack of one host.
#[derive(Debug)]
pub struct Stack {
    host: HostId,
    tcp: Vec<TcpSocket>,
    udp: Vec<UdpSocket>,
    /// Inbound packets that matched no socket.
    dropped_no_socket: u64,
    /// RSTs owed for TCP segments that matched no socket (a real stack
    /// answers them; that answer is how a dialer learns "refused").
    pending_rsts: Vec<Packet<Segment>>,
    /// Fault injection: silently swallow inbound UDP (a filtering
    /// firewall/NAT on the path — the condition RealPlayer's UDP→TCP
    /// fallback existed for).
    udp_blackhole: bool,
    /// Datagrams eaten by the black hole.
    udp_blackholed: u64,
}

impl Stack {
    /// Creates an empty stack for `host`.
    pub fn new(host: HostId) -> Self {
        Stack {
            host,
            tcp: Vec::new(),
            udp: Vec::new(),
            dropped_no_socket: 0,
            pending_rsts: Vec::new(),
            udp_blackhole: false,
            udp_blackholed: 0,
        }
    }

    /// The host this stack belongs to.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Creates a TCP socket bound to `port`.
    pub fn tcp_socket(&mut self, port: u16, cfg: TcpConfig) -> TcpHandle {
        let local = Addr::new(self.host, port);
        self.tcp.push(TcpSocket::new(local, cfg));
        TcpHandle(self.tcp.len() - 1)
    }

    /// Creates a UDP socket bound to `port`.
    pub fn udp_socket(&mut self, port: u16) -> UdpHandle {
        let local = Addr::new(self.host, port);
        self.udp.push(UdpSocket::new(local));
        UdpHandle(self.udp.len() - 1)
    }

    /// Access a TCP socket.
    pub fn tcp(&mut self, h: TcpHandle) -> &mut TcpSocket {
        &mut self.tcp[h.0]
    }

    /// Shared access to a TCP socket.
    pub fn tcp_ref(&self, h: TcpHandle) -> &TcpSocket {
        &self.tcp[h.0]
    }

    /// Access a UDP socket.
    pub fn udp(&mut self, h: UdpHandle) -> &mut UdpSocket {
        &mut self.udp[h.0]
    }

    /// Shared access to a UDP socket.
    pub fn udp_ref(&self, h: UdpHandle) -> &UdpSocket {
        &self.udp[h.0]
    }

    /// Packets dropped for want of a matching socket.
    pub fn dropped_no_socket(&self) -> u64 {
        self.dropped_no_socket
    }

    /// Sums every TCP socket's lifetime counters — the host-wide rollup
    /// the campaign counter registry collects at session end.
    pub fn total_tcp_stats(&self) -> crate::tcp::TcpStats {
        let mut total = crate::tcp::TcpStats::default();
        for s in &self.tcp {
            let st = s.stats();
            total.segments_sent += st.segments_sent;
            total.retransmits += st.retransmits;
            total.timeouts += st.timeouts;
            total.fast_retransmits += st.fast_retransmits;
            total.bytes_acked += st.bytes_acked;
            total.bytes_delivered += st.bytes_delivered;
        }
        total
    }

    /// Turns the inbound-UDP black hole on or off (fault injection).
    pub fn set_udp_blackhole(&mut self, on: bool) {
        self.udp_blackhole = on;
    }

    /// Datagrams silently eaten by the black hole so far.
    pub fn udp_blackholed(&self) -> u64 {
        self.udp_blackholed
    }

    /// Receives all delivered packets from the network, dispatches them to
    /// sockets, then transmits everything the sockets produce. Returns the
    /// number of packets handled.
    pub fn poll(&mut self, now: SimTime, net: &mut Network<Segment>) -> usize {
        let mut handled = 0;

        while let Some(pkt) = net.recv(self.host) {
            handled += 1;
            self.dispatch(now, pkt);
        }

        for pkt in self.pending_rsts.drain(..) {
            net.send(now, pkt);
            handled += 1;
        }

        for sock in &mut self.tcp {
            handled += sock.poll_into(now, &mut |pkt| {
                net.send(now, pkt);
            });
        }
        for sock in &mut self.udp {
            handled += sock.poll_into(now, &mut |pkt| {
                net.send(now, pkt);
            });
        }
        handled
    }

    fn dispatch(&mut self, now: SimTime, pkt: Packet<Segment>) {
        match pkt.payload {
            Segment::Tcp(seg) => {
                // Prefer an exact (local port, remote addr) match, then a
                // listener on the port.
                let exact = self
                    .tcp
                    .iter_mut()
                    .find(|s| s.local().port == pkt.dst.port && s.remote() == Some(pkt.src));
                let sock = match exact {
                    Some(s) => Some(s),
                    None => self
                        .tcp
                        .iter_mut()
                        .find(|s| s.local().port == pkt.dst.port && s.state() == TcpState::Listen),
                };
                match sock {
                    Some(s) => s.on_segment(now, pkt.src, seg),
                    None => {
                        self.dropped_no_socket += 1;
                        // Answer non-RST segments to a dead port with an
                        // RST, as RFC 793 requires — a SYN against a
                        // crashed server fails fast as "refused" instead
                        // of timing out. (Never replying to an RST
                        // prevents RST storms between two dead ends.)
                        if !seg.flags.rst && self.pending_rsts.len() < 64 {
                            let rst = TcpSegment {
                                seq: seg.ack,
                                ack: seg.seq + seg.data.len() as u64 + u64::from(seg.flags.syn),
                                flags: TcpFlags {
                                    rst: true,
                                    ack: false,
                                    syn: false,
                                    fin: false,
                                },
                                window: 0,
                                data: PayloadBytes::empty(),
                            };
                            let size = rst.wire_size();
                            self.pending_rsts.push(Packet::new(
                                pkt.dst,
                                pkt.src,
                                size,
                                Segment::Tcp(rst),
                            ));
                        }
                    }
                }
            }
            Segment::Udp(dgram) => {
                if self.udp_blackhole {
                    self.udp_blackholed += 1;
                    return;
                }
                match self.udp.iter_mut().find(|s| s.local().port == pkt.dst.port) {
                    Some(s) => s.on_datagram(pkt.src, dgram.data),
                    None => self.dropped_no_socket += 1,
                }
            }
        }
    }

    /// When any socket next needs attention (retransmission timers).
    pub fn next_wake(&self) -> Option<SimTime> {
        earliest(self.tcp.iter().map(|s| s.next_wake()))
    }

    /// `true` if any socket has deferred work a poll would emit (TCP pure
    /// ACKs or retransmissions, queued UDP datagrams, owed RSTs).
    pub fn has_pending_work(&self) -> bool {
        !self.pending_rsts.is_empty()
            || self.tcp.iter().any(|s| s.has_pending_work())
            || self.udp.iter().any(|s| s.has_pending_work())
    }

    /// `true` when a poll at `now` could do anything at all: inbound
    /// packets are waiting in the network, a socket timer is due, or a
    /// socket holds deferred output. Every other condition a poll acts on
    /// (new application writes, `connect`/`listen` calls) arises from the
    /// application running, which the driver tracks itself — so a driver
    /// may safely skip polls where this is `false` and the application has
    /// not run since the last poll.
    pub fn needs_poll(&self, net: &Network<Segment>, now: SimTime) -> bool {
        if net.inbox_len(self.host) > 0 || !self.pending_rsts.is_empty() {
            return true;
        }
        // One pass over the sockets covers both remaining conditions
        // (deferred output, due timer) — this runs several times per
        // simulated instant, so it stays a single sweep of field reads.
        self.tcp
            .iter()
            .any(|s| s.has_pending_work() || s.next_wake().is_some_and(|t| t <= now))
            || self.udp.iter().any(|s| s.has_pending_work())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_net::{LinkParams, NetBuilder};
    use rv_sim::{Clock, SimDuration, SimRng, StepOutcome};

    /// Builds two hosts joined by symmetric links and returns
    /// (network, client stack, server stack).
    fn world(params: LinkParams) -> (Network<Segment>, Stack, Stack) {
        let mut b = NetBuilder::new();
        let c = b.host();
        let s = b.host();
        b.duplex(c, s, params);
        let mut rng = SimRng::seed_from_u64(99);
        let net = b.build_with_payload::<Segment>(&mut rng);
        (net, Stack::new(HostId(0)), Stack::new(HostId(1)))
    }

    /// Drives network + both stacks until `deadline` or quiescence.
    fn drive(
        net: &mut Network<Segment>,
        a: &mut Stack,
        b: &mut Stack,
        clock: &mut Clock,
        deadline: SimTime,
    ) {
        rv_sim::run_until(clock, deadline, |now| {
            let mut work = net.poll(now);
            work += a.poll(now, net);
            work += b.poll(now, net);
            if work > 0 {
                StepOutcome::Worked
            } else if let Some(t) = earliest([net.next_wake(), a.next_wake(), b.next_wake()]) {
                StepOutcome::IdleUntil(t)
            } else {
                StepOutcome::Quiescent
            }
        });
    }

    #[test]
    fn tcp_over_simulated_network_end_to_end() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(30));
        let (mut net, mut cs, mut ss) = world(params);
        let ch = cs.tcp_socket(2000, TcpConfig::default());
        let sh = ss.tcp_socket(554, TcpConfig::default());
        ss.tcp(sh).listen();
        cs.tcp(ch).connect(Addr::new(HostId(1), 554), SimTime::ZERO);

        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
        cs.tcp(ch).send(&payload);

        let mut clock = Clock::new();
        let mut received = Vec::new();
        for step in 1..300 {
            drive(
                &mut net,
                &mut cs,
                &mut ss,
                &mut clock,
                SimTime::from_millis(step * 100),
            );
            received.extend(ss.tcp(sh).recv(usize::MAX));
            if received.len() == payload.len() {
                break;
            }
        }
        assert_eq!(received, payload);
        // ~60 ms RTT should be visible in the client's SRTT.
        let srtt = cs.tcp(ch).srtt().expect("rtt measured");
        assert!((srtt.as_millis() as i64 - 60).abs() < 30, "srtt {srtt}");
    }

    #[test]
    fn tcp_recovers_over_lossy_link() {
        let params = LinkParams::lan()
            .rate(500_000.0)
            .delay(SimDuration::from_millis(20))
            .loss(0.05);
        let (mut net, mut cs, mut ss) = world(params);
        let ch = cs.tcp_socket(2000, TcpConfig::default());
        let sh = ss.tcp_socket(554, TcpConfig::default());
        ss.tcp(sh).listen();
        cs.tcp(ch).connect(Addr::new(HostId(1), 554), SimTime::ZERO);

        let payload = vec![0xABu8; 60_000];
        cs.tcp(ch).send(&payload);

        let mut clock = Clock::new();
        let mut received = Vec::new();
        for step in 1..600 {
            drive(
                &mut net,
                &mut cs,
                &mut ss,
                &mut clock,
                SimTime::from_millis(step * 100),
            );
            received.extend(ss.tcp(sh).recv(usize::MAX));
            if received.len() == payload.len() {
                break;
            }
        }
        assert_eq!(
            received.len(),
            payload.len(),
            "transfer completed despite loss"
        );
        assert!(received.iter().all(|b| *b == 0xAB));
        let stats = cs.tcp(ch).stats();
        assert!(stats.retransmits > 0, "loss should force retransmissions");
    }

    #[test]
    fn udp_datagrams_flow_and_loss_is_tolerated() {
        let params = LinkParams::lan()
            .rate(500_000.0)
            .delay(SimDuration::from_millis(10))
            .loss(0.1);
        let (mut net, mut cs, mut ss) = world(params);
        let cu = cs.udp_socket(5000);
        let su = ss.udp_socket(5001);

        let mut clock = Clock::new();
        for i in 0..200u16 {
            ss.udp(su)
                .send_to(Addr::new(HostId(0), 5000), i.to_be_bytes().to_vec());
        }
        drive(
            &mut net,
            &mut cs,
            &mut ss,
            &mut clock,
            SimTime::from_secs(30),
        );

        let mut got = 0;
        while cs.udp(cu).recv().is_some() {
            got += 1;
        }
        assert!(
            got > 150 && got < 200,
            "got {got}: loss should drop some but not most"
        );
    }

    #[test]
    fn packets_to_unbound_ports_are_counted() {
        let params = LinkParams::lan();
        let (mut net, mut cs, mut ss) = world(params);
        let cu = cs.udp_socket(5000);
        cs.udp(cu).send_to(Addr::new(HostId(1), 9999), vec![1]);
        let mut clock = Clock::new();
        drive(
            &mut net,
            &mut cs,
            &mut ss,
            &mut clock,
            SimTime::from_secs(1),
        );
        assert_eq!(ss.dropped_no_socket(), 1);
    }

    #[test]
    fn two_tcp_connections_multiplex_on_one_host() {
        let params = LinkParams::lan()
            .rate(1e7)
            .delay(SimDuration::from_millis(5));
        let (mut net, mut cs, mut ss) = world(params);
        let c1 = cs.tcp_socket(2000, TcpConfig::default());
        let c2 = cs.tcp_socket(2001, TcpConfig::default());
        let s1 = ss.tcp_socket(554, TcpConfig::default());
        let s2 = ss.tcp_socket(555, TcpConfig::default());
        ss.tcp(s1).listen();
        ss.tcp(s2).listen();
        cs.tcp(c1).connect(Addr::new(HostId(1), 554), SimTime::ZERO);
        cs.tcp(c2).connect(Addr::new(HostId(1), 555), SimTime::ZERO);
        cs.tcp(c1).send(b"control");
        cs.tcp(c2).send(b"data");

        let mut clock = Clock::new();
        drive(
            &mut net,
            &mut cs,
            &mut ss,
            &mut clock,
            SimTime::from_secs(5),
        );
        assert_eq!(ss.tcp(s1).recv(64), b"control".to_vec());
        assert_eq!(ss.tcp(s2).recv(64), b"data".to_vec());
    }
}
