//! A from-scratch TCP implementation (Reno congestion control).
//!
//! Implements what mattered for 2001-era streaming dynamics:
//!
//! * three-way handshake, FIN close, RST abort;
//! * byte-stream send/receive buffers with cumulative ACKs and bounded
//!   out-of-order reassembly;
//! * slow start, congestion avoidance, fast retransmit + fast recovery
//!   (Reno), RTO per RFC 6298 (SRTT/RTTVAR, Karn's rule, exponential
//!   backoff);
//! * receiver flow control via advertised windows (with window-update ACKs
//!   when the application drains a closed window).
//!
//! Deliberately omitted, as irrelevant to the reproduced figures: SACK,
//! Nagle, delayed ACKs, zero-window probes, and wire-format encoding (the
//! simulator carries structured segments; sizes still include real header
//! overhead).

use std::collections::VecDeque;

use rv_net::{Addr, Packet};
use rv_sim::trace::{self, TraceEvent};
use rv_sim::{ByteRope, PayloadBytes, SimDuration, SimTime};

use crate::segment::{Segment, TcpFlags, TcpSegment, DEFAULT_MSS};

/// Connection state, RFC 793 reduced to the transitions the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open: waiting for a SYN.
    Listen,
    /// Active open: SYN sent, waiting for SYN+ACK.
    SynSent,
    /// SYN received, SYN+ACK sent, waiting for the final ACK.
    SynRcvd,
    /// Data flows.
    Established,
    /// We sent a FIN and await its ACK.
    FinSent,
}

/// Tunable parameters. Defaults model a 2001-era BSD-ish stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size (application bytes per segment).
    pub mss: u32,
    /// Send buffer capacity in bytes (unsent + unacked).
    pub send_capacity: usize,
    /// Receive buffer capacity in bytes; the advertised-window ceiling.
    pub recv_capacity: usize,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold in bytes.
    pub initial_ssthresh: u32,
    /// RTO floor (RFC 2988 recommends 1 s; common stacks used lower).
    pub min_rto: SimDuration,
    /// RTO ceiling.
    pub max_rto: SimDuration,
    /// Handshake retransmissions before an active open gives up with
    /// [`TcpError::ConnectTimeout`] (BSD `tcp_syn_retries`-style). The
    /// default of 6 gives up only after ~213 s of cumulative backoff
    /// (3+6+12+24+48+60+60 with the default RTO bounds) — beyond any
    /// session deadline in the study, so a connect against a live server
    /// behaves exactly as the old unbounded retry did.
    pub max_syn_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: DEFAULT_MSS,
            send_capacity: 256 * 1024,
            recv_capacity: 64 * 1024,
            initial_cwnd_segments: 2,
            initial_ssthresh: 64 * 1024,
            min_rto: SimDuration::from_millis(1000),
            max_rto: SimDuration::from_secs(60),
            max_syn_retries: 6,
        }
    }
}

/// Why a connection reached [`TcpState::Closed`] abnormally. Read (and
/// cleared) with [`TcpSocket::take_error`]; a clean FIN close sets none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// The handshake exhausted its SYN retransmissions.
    ConnectTimeout,
    /// A SYN was answered with RST: nothing listening (or the host is
    /// refusing connections — how a crashed server looks to a dialer).
    Refused,
    /// The established connection was torn down by a peer RST.
    Reset,
}

/// Lifetime counters for one connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Data segments transmitted (first time).
    pub segments_sent: u64,
    /// Segments retransmitted (timeout or fast retransmit).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Application bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Application bytes delivered to the local application.
    pub bytes_delivered: u64,
}

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct TcpSocket {
    cfg: TcpConfig,
    local: Addr,
    remote: Option<Addr>,
    state: TcpState,

    // --- send side ---
    /// Initial send sequence.
    iss: u64,
    /// Oldest unacknowledged sequence.
    snd_una: u64,
    /// Next sequence to transmit.
    snd_nxt: u64,
    /// Sequence number of the first byte in `send_buf`.
    buf_seq: u64,
    /// Unacknowledged + unsent bytes as a rope of shared chunks:
    /// `send_bytes` pushes the caller's buffer without copying, and
    /// segmentize/retransmit window it with zero-copy sub-slices.
    send_buf: ByteRope,
    /// Congestion window, bytes (f64 so congestion-avoidance fractions accumulate).
    cwnd: f64,
    ssthresh: f64,
    /// Peer's advertised window.
    rwnd: u32,
    dup_acks: u32,
    in_fast_recovery: bool,
    /// `snd_nxt` when fast recovery began (Reno exit point).
    recover: u64,

    // --- retransmission timing ---
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    /// One in-flight RTT measurement: (sequence end, send time). Karn's
    /// rule: invalidated by any retransmission.
    rtt_sample: Option<(u64, SimTime)>,

    // --- receive side ---
    rcv_nxt: u64,
    recv_buf: ByteRope,
    /// Out-of-order payloads as a `(sequence, payload)` vector sorted by
    /// sequence, stored by value (the segment's shared slice — no byte
    /// copy on insertion or absorption). Reassembly windows are tiny (a
    /// few segments behind one loss), so a sorted vector beats a
    /// `BTreeMap`: binary-search insert, no per-segment node allocation,
    /// and the storage is reusable across connections.
    ooo: Vec<(u64, PayloadBytes)>,
    ooo_bytes: usize,
    peer_fin: bool,

    // --- control ---
    /// Our FIN's sequence number once sending was requested and data drained.
    fin_seq: Option<u64>,
    close_requested: bool,
    /// Pure ACKs owed to the peer: one per received data/FIN segment, each
    /// snapshotting (rcv_nxt, window) *at receipt time*. Emitting the
    /// snapshots — rather than the current values — reproduces real
    /// receiver behavior: in-order bursts yield distinct cumulative ACKs,
    /// out-of-order segments yield true duplicates (fast retransmit depends
    /// on the distinction).
    pending_acks: VecDeque<(u64, u32)>,
    /// Set when loss recovery wants the head-of-line segment re-sent; the
    /// next poll() performs it.
    pending_retransmit: bool,
    /// Handshake retransmissions performed so far (active or passive).
    syn_retries: u32,
    /// Why the socket closed abnormally, until the owner collects it.
    last_error: Option<TcpError>,
    /// An RST owed to `remote` after [`TcpSocket::abort`]; emitted by the
    /// next poll even though the socket is already Closed.
    pending_rst: Option<Addr>,
    stats: TcpStats,
}

impl TcpSocket {
    /// Creates a closed socket bound to `local`.
    pub fn new(local: Addr, cfg: TcpConfig) -> Self {
        TcpSocket {
            cfg,
            local,
            remote: None,
            state: TcpState::Closed,
            iss: 0,
            snd_una: 0,
            snd_nxt: 0,
            buf_seq: 1,
            send_buf: ByteRope::new(),
            cwnd: f64::from(cfg.initial_cwnd_segments * cfg.mss),
            ssthresh: f64::from(cfg.initial_ssthresh),
            rwnd: cfg.recv_capacity as u32,
            dup_acks: 0,
            in_fast_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: SimDuration::from_secs(3), // RFC 6298 initial RTO
            rto_deadline: None,
            rtt_sample: None,
            rcv_nxt: 0,
            recv_buf: ByteRope::new(),
            ooo: Vec::new(),
            ooo_bytes: 0,
            peer_fin: false,
            fin_seq: None,
            close_requested: false,
            pending_acks: VecDeque::new(),
            pending_retransmit: false,
            syn_retries: 0,
            last_error: None,
            pending_rst: None,
            stats: TcpStats::default(),
        }
    }

    /// The local endpoint.
    pub fn local(&self) -> Addr {
        self.local
    }

    /// The connected peer, if any.
    pub fn remote(&self) -> Option<Addr> {
        self.remote
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Current congestion window in bytes (for instrumentation).
    pub fn cwnd(&self) -> u32 {
        self.cwnd as u32
    }

    /// Current smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Passive open.
    pub fn listen(&mut self) {
        assert_eq!(self.state, TcpState::Closed, "listen on non-closed socket");
        self.state = TcpState::Listen;
    }

    /// Active open toward `remote` at time `now`.
    pub fn connect(&mut self, remote: Addr, now: SimTime) {
        assert_eq!(self.state, TcpState::Closed, "connect on non-closed socket");
        self.remote = Some(remote);
        self.state = TcpState::SynSent;
        self.snd_una = self.iss;
        self.snd_nxt = self.iss; // SYN emitted by poll()
        self.buf_seq = self.iss + 1;
        self.rto_deadline = Some(now + self.rto);
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established || self.state == TcpState::FinSent
    }

    /// `true` when the connection is fully closed or reset.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Bytes of send-buffer space available.
    pub fn send_capacity_left(&self) -> usize {
        self.cfg.send_capacity - self.send_buf.len()
    }

    /// Queues application data by copying it into one fresh chunk;
    /// returns bytes accepted. Callers that already own their bytes
    /// should prefer [`TcpSocket::send_bytes`], which queues without
    /// copying at all.
    pub fn send(&mut self, data: &[u8]) -> usize {
        if self.close_requested {
            return 0;
        }
        let n = data.len().min(self.send_capacity_left());
        self.send_buf.push_slice(&data[..n]);
        n
    }

    /// Queues application data, taking ownership of the shared buffer —
    /// the zero-copy ingress: transmission and every retransmission
    /// window this very allocation. Returns bytes accepted; on a partial
    /// accept the tail is dropped (slice and re-offer, as with
    /// [`TcpSocket::send`]).
    pub fn send_bytes(&mut self, data: PayloadBytes) -> usize {
        if self.close_requested {
            return 0;
        }
        let n = data.len().min(self.send_capacity_left());
        if n == data.len() {
            self.send_buf.push(data);
        } else {
            self.send_buf.push(data.slice(..n));
        }
        n
    }

    /// Bytes queued but not yet acknowledged.
    pub fn unacked_and_unsent(&self) -> usize {
        self.send_buf.len()
    }

    /// `true` when every queued byte has been acknowledged.
    pub fn all_sent_and_acked(&self) -> bool {
        self.send_buf.is_empty() && self.snd_una == self.snd_nxt
    }

    /// Requests graceful close after queued data drains.
    pub fn close(&mut self) {
        self.close_requested = true;
    }

    /// Hard abort: discards all connection state and owes the peer an RST
    /// (emitted by the next poll). Models a process crash taking its
    /// connections with it.
    pub fn abort(&mut self) {
        if !matches!(self.state, TcpState::Closed | TcpState::Listen) {
            self.pending_rst = self.remote;
        }
        self.reset_conn_state();
        self.state = TcpState::Closed;
        // Forget the peer: an aborted socket must not keep exact-matching
        // its old remote (that would silently swallow segments the host
        // should now answer with RSTs from the no-socket path).
        self.remote = None;
    }

    /// Returns the socket to a fresh Closed state (same local address,
    /// same config, lifetime stats preserved) so the owner can
    /// `connect`/`listen` again — the substrate of client reconnects and
    /// server restarts. Unlike [`TcpSocket::abort`], owes the peer
    /// nothing and clears any pending error.
    pub fn reset(&mut self) {
        self.reset_conn_state();
        self.state = TcpState::Closed;
        self.last_error = None;
        self.pending_rst = None;
        self.remote = None;
    }

    /// Clears per-connection state common to [`TcpSocket::abort`] and
    /// [`TcpSocket::reset`].
    fn reset_conn_state(&mut self) {
        self.iss = 0;
        self.snd_una = 0;
        self.snd_nxt = 0;
        self.buf_seq = 1;
        self.send_buf.clear();
        self.cwnd = f64::from(self.cfg.initial_cwnd_segments * self.cfg.mss);
        self.ssthresh = f64::from(self.cfg.initial_ssthresh);
        self.rwnd = self.cfg.recv_capacity as u32;
        self.dup_acks = 0;
        self.in_fast_recovery = false;
        self.recover = 0;
        self.srtt = None;
        self.rttvar = SimDuration::ZERO;
        self.rto = SimDuration::from_secs(3);
        self.rto_deadline = None;
        self.rtt_sample = None;
        self.rcv_nxt = 0;
        self.recv_buf.clear();
        self.ooo.clear();
        self.ooo_bytes = 0;
        self.peer_fin = false;
        self.fin_seq = None;
        self.close_requested = false;
        self.pending_acks.clear();
        self.pending_retransmit = false;
        self.syn_retries = 0;
    }

    /// Takes (and clears) the reason the socket last closed abnormally.
    pub fn take_error(&mut self) -> Option<TcpError> {
        self.last_error.take()
    }

    /// Reads up to `max` bytes of in-order received data into one `Vec`
    /// (single walk, single allocation). Prefer
    /// [`TcpSocket::recv_with`] to consume without the `Vec` at all.
    pub fn recv(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.recv_buf.len());
        let mut out = Vec::with_capacity(n);
        self.recv_with(max, &mut |chunk| out.extend_from_slice(chunk));
        out
    }

    /// Reads up to `max` bytes of in-order received data, handing each
    /// contiguous chunk to `sink` without copying. Returns bytes
    /// consumed.
    pub fn recv_with(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> usize {
        let was_closed = self.advertised_window() == 0;
        let n = self.recv_buf.read_with(max, sink);
        self.stats.bytes_delivered += n as u64;
        if was_closed && self.advertised_window() > 0 && n > 0 {
            // Window update so a stalled sender can resume.
            self.queue_ack();
        }
        n
    }

    /// Bytes readable right now.
    pub fn recv_available(&self) -> usize {
        self.recv_buf.len()
    }

    /// `true` once the peer closed and all its data has been read.
    pub fn recv_finished(&self) -> bool {
        self.peer_fin && self.recv_buf.is_empty()
    }

    fn queue_ack(&mut self) {
        if self.pending_acks.len() < 64 {
            self.pending_acks
                .push_back((self.rcv_nxt, self.advertised_window()));
        }
    }

    fn advertised_window(&self) -> u32 {
        // Only in-order buffered data consumes window: charging the
        // out-of-order store would shrink the advertisement on every
        // reordered segment and make duplicate ACKs unrecognizable as such.
        (self.cfg.recv_capacity.saturating_sub(self.recv_buf.len())) as u32
    }

    /// Sequence space currently in flight.
    fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Processes an inbound segment.
    pub fn on_segment(&mut self, now: SimTime, src: Addr, seg: TcpSegment) {
        if seg.flags.rst {
            match self.state {
                // A closed or listening socket ignores stray RSTs.
                TcpState::Closed | TcpState::Listen => {}
                TcpState::SynSent => {
                    self.last_error = Some(TcpError::Refused);
                    self.state = TcpState::Closed;
                    self.rto_deadline = None;
                }
                _ => {
                    self.last_error = Some(TcpError::Reset);
                    self.state = TcpState::Closed;
                    self.rto_deadline = None;
                }
            }
            return;
        }
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => {
                if seg.flags.syn {
                    self.remote = Some(src);
                    self.rcv_nxt = seg.seq + 1;
                    self.state = TcpState::SynRcvd;
                    self.snd_una = self.iss;
                    self.snd_nxt = self.iss; // SYN+ACK emitted by poll()
                    self.buf_seq = self.iss + 1;
                    self.rto_deadline = Some(now + self.rto);
                }
            }
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.iss + 1 {
                    self.rcv_nxt = seg.seq + 1;
                    self.snd_una = seg.ack;
                    self.rwnd = seg.window;
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                    self.queue_ack();
                }
            }
            TcpState::SynRcvd => {
                if seg.flags.ack && seg.ack == self.iss + 1 {
                    self.snd_una = seg.ack;
                    self.rwnd = seg.window;
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                }
                // Data can ride on the handshake-completing ACK.
                self.process_payload(seg);
            }
            TcpState::Established | TcpState::FinSent => {
                if seg.flags.ack {
                    self.process_ack(now, &seg);
                }
                self.process_payload(seg);
            }
        }
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment) {
        let prev_rwnd = self.rwnd;
        self.rwnd = seg.window;
        if seg.ack > self.snd_una && seg.ack <= self.snd_nxt {
            // --- new data acknowledged ---
            let newly_acked = seg.ack - self.snd_una;
            self.snd_una = seg.ack;
            self.dup_acks = 0;
            self.stats.bytes_acked += newly_acked;

            // Release acknowledged bytes from the buffer. The FIN occupies
            // sequence space beyond the buffered data.
            let data_acked = (seg.ack.min(self.buf_seq + self.send_buf.len() as u64))
                .saturating_sub(self.buf_seq) as usize;
            self.send_buf.advance(data_acked);
            self.buf_seq += data_acked as u64;

            // RTT sampling (Karn: the sample is cleared on retransmission).
            if let Some((end, sent_at)) = self.rtt_sample {
                if seg.ack >= end {
                    self.update_rtt(now.saturating_since(sent_at));
                    self.rtt_sample = None;
                }
            }

            if self.in_fast_recovery {
                if seg.ack >= self.recover {
                    self.in_fast_recovery = false;
                    self.cwnd = self.ssthresh;
                    trace::emit(now, || TraceEvent::TcpCwnd {
                        port: self.local.port,
                        cwnd: self.cwnd as u32,
                        ssthresh: self.ssthresh as u32,
                    });
                }
                // Partial ACKs just deflate toward ssthresh (plain Reno).
            } else if self.cwnd < self.ssthresh {
                // Slow start.
                self.cwnd += f64::from(self.cfg.mss);
            } else {
                // Congestion avoidance: +MSS per RTT.
                let mss = f64::from(self.cfg.mss);
                self.cwnd += mss * mss / self.cwnd;
            }

            if let Some(fin_seq) = self.fin_seq {
                if self.state == TcpState::FinSent && seg.ack > fin_seq {
                    self.state = TcpState::Closed;
                }
            }

            // Rearm or clear the retransmission timer.
            self.rto_deadline = if self.snd_una < self.snd_nxt {
                Some(now + self.rto)
            } else {
                None
            };
        } else if seg.ack == self.snd_una
            && self.flight_size() > 0
            && seg.data.is_empty()
            && seg.window == prev_rwnd
        {
            // --- duplicate ACK ---
            self.dup_acks += 1;
            if self.in_fast_recovery {
                self.cwnd += f64::from(self.cfg.mss);
            } else if self.dup_acks == 3 {
                let mss = f64::from(self.cfg.mss);
                self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0 * mss);
                self.cwnd = self.ssthresh + 3.0 * mss;
                self.in_fast_recovery = true;
                self.recover = self.snd_nxt;
                self.stats.fast_retransmits += 1;
                self.pending_retransmit = true;
                self.rtt_sample = None; // Karn
                trace::emit(now, || TraceEvent::TcpCwnd {
                    port: self.local.port,
                    cwnd: self.cwnd as u32,
                    ssthresh: self.ssthresh as u32,
                });
            }
        }
    }

    fn process_payload(&mut self, seg: TcpSegment) {
        let TcpSegment {
            seq, flags, data, ..
        } = seg;
        let data_len = data.len() as u64;
        if data_len > 0 {
            if seq == self.rcv_nxt {
                // All-or-nothing: a sender respecting our advertised window
                // never overruns; a partial accept would silently discard a
                // tail only an RTO could recover.
                let room = self.cfg.recv_capacity.saturating_sub(self.recv_buf.len());
                if data.len() <= room {
                    self.recv_buf.push(data);
                    self.rcv_nxt += data_len;
                    self.absorb_ooo();
                }
            } else if seq > self.rcv_nxt {
                // Out of order: store the segment's payload by value if
                // room, and never store duplicates. A move of the shared
                // slice — no byte copy.
                let room = self
                    .cfg
                    .recv_capacity
                    .saturating_sub(self.recv_buf.len() + self.ooo_bytes);
                let pos = self.ooo.partition_point(|(s, _)| *s < seq);
                let duplicate = self.ooo.get(pos).is_some_and(|(s, _)| *s == seq);
                if data.len() <= room && !duplicate {
                    self.ooo_bytes += data.len();
                    self.ooo.insert(pos, (seq, data));
                }
            }
            // ACK every data segment (old/duplicate data is re-ACKed too —
            // that is what makes duplicate ACKs visible to the sender).
            self.queue_ack();
        }
        if flags.fin {
            let fin_seq = seq + data_len;
            if fin_seq == self.rcv_nxt && !self.peer_fin {
                self.rcv_nxt += 1;
                self.peer_fin = true;
            }
            self.queue_ack();
        }
    }

    /// Pulls contiguous out-of-order segments into the receive buffer,
    /// stopping when the in-order buffer is full.
    fn absorb_ooo(&mut self) {
        while let Some((seq, data)) = self.ooo.first() {
            let seq = *seq;
            if seq > self.rcv_nxt {
                break;
            }
            let len = data.len();
            if seq == self.rcv_nxt || seq + (len as u64) > self.rcv_nxt {
                let skip = (self.rcv_nxt - seq) as usize;
                let room = self.cfg.recv_capacity.saturating_sub(self.recv_buf.len());
                if len - skip > room {
                    break; // no room yet; keep it out-of-order
                }
                let (_, data) = self.ooo.remove(0);
                self.ooo_bytes -= len;
                self.rcv_nxt += (len - skip) as u64;
                // Partial overlap narrows the stored slice in place.
                self.recv_buf.push(data.slice(skip..));
            } else {
                // Fully old segment: discard.
                let (_, data) = self.ooo.remove(0);
                self.ooo_bytes -= data.len();
            }
        }
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let delta = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                // RTTVAR = 3/4 RTTVAR + 1/4 |delta|; SRTT = 7/8 SRTT + 1/8 sample.
                self.rttvar = (self.rttvar * 3) / 4 + delta / 4;
                self.srtt = Some((srtt * 7) / 8 + sample / 8);
            }
        }
        let srtt = self.srtt.expect("set above");
        self.rto = (srtt + (self.rttvar * 4).max(SimDuration::from_millis(10)))
            .clamp(self.cfg.min_rto, self.cfg.max_rto);
    }

    /// Produces segments ready to transmit at `now` (including handshake,
    /// retransmissions due to timeout, new data, FIN, and pure ACKs),
    /// collected into a `Vec`. Prefer [`TcpSocket::poll_into`] on hot
    /// paths.
    pub fn poll(&mut self, now: SimTime) -> Vec<Packet<Segment>> {
        let mut out = Vec::new();
        self.poll_into(now, &mut |pkt| out.push(pkt));
        out
    }

    /// Produces segments ready to transmit at `now`, handing each to
    /// `emit` as it is built (no per-poll allocation). Returns the number
    /// of segments emitted.
    pub fn poll_into(&mut self, now: SimTime, emit: &mut dyn FnMut(Packet<Segment>)) -> usize {
        let mut emitted = 0;
        // An abort's RST goes out even though the socket is already
        // Closed — the one segment a dead connection still owes the wire.
        if let Some(dst) = self.pending_rst.take() {
            emitted += 1;
            emit(self.make_packet(
                dst,
                TcpSegment {
                    seq: self.snd_nxt,
                    ack: 0,
                    flags: TcpFlags {
                        rst: true,
                        ack: false,
                        syn: false,
                        fin: false,
                    },
                    window: 0,
                    data: PayloadBytes::empty(),
                },
            ));
        }
        let Some(remote) = self.remote else {
            return emitted;
        };

        // Retransmission timeout.
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline && self.state != TcpState::Closed {
                self.on_timeout(now);
            }
        }

        match self.state {
            TcpState::SynSent => {
                // Emit the SYN exactly once; a timeout rewinds snd_nxt to
                // the ISS so poll() re-emits it. Emitting unconditionally
                // would spin drivers that re-poll while work is produced.
                if self.snd_nxt == self.iss {
                    self.snd_nxt = self.iss + 1;
                    emitted += 1;
                    emit(self.make_packet(
                        remote,
                        TcpSegment {
                            seq: self.iss,
                            ack: 0,
                            flags: TcpFlags::SYN,
                            window: self.advertised_window(),
                            data: PayloadBytes::empty(),
                        },
                    ));
                }
                return emitted;
            }
            TcpState::SynRcvd => {
                if self.snd_nxt == self.iss {
                    self.snd_nxt = self.iss + 1;
                    emitted += 1;
                    emit(self.make_packet(
                        remote,
                        TcpSegment {
                            seq: self.iss,
                            ack: self.rcv_nxt,
                            flags: TcpFlags::SYN_ACK,
                            window: self.advertised_window(),
                            data: PayloadBytes::empty(),
                        },
                    ));
                }
                return emitted;
            }
            TcpState::Closed | TcpState::Listen => return emitted,
            TcpState::Established | TcpState::FinSent => {}
        }

        // Fast-retransmit request from triple-dupack processing.
        if self.pending_retransmit {
            self.pending_retransmit = false;
            if let Some(pkt) = self.retransmit_head(remote) {
                trace::emit(now, || TraceEvent::TcpRetransmit {
                    port: self.local.port,
                    seq: (self.snd_una - self.iss) as u32,
                    bytes: pkt.size,
                    fast: self.in_fast_recovery,
                });
                emitted += 1;
                emit(pkt);
                self.rto_deadline = Some(now + self.rto);
            }
        }

        // New data within min(cwnd, rwnd). rwnd is respected strictly; a
        // zero window stalls the sender until the receiver's window-update
        // ACK (sent when the application drains) reopens it.
        let window = (self.cwnd as u64).min(u64::from(self.rwnd));
        loop {
            let buffered_end = self.buf_seq + self.send_buf.len() as u64;
            if self.snd_nxt >= buffered_end {
                break;
            }
            if self.flight_size() >= window {
                break;
            }
            let budget = window - self.flight_size();
            let len = (buffered_end - self.snd_nxt)
                .min(u64::from(self.cfg.mss))
                .min(budget) as usize;
            if len == 0 {
                break;
            }
            let off = (self.snd_nxt - self.buf_seq) as usize;
            let data = self.send_buf.slice(off, len);
            let seg = TcpSegment {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags::ACK,
                window: self.advertised_window(),
                data,
            };
            self.snd_nxt += len as u64;
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.snd_nxt, now));
            }
            if self.rto_deadline.is_none() {
                self.rto_deadline = Some(now + self.rto);
            }
            self.stats.segments_sent += 1;
            self.pending_acks.clear(); // cumulative ack piggybacks on data
            emitted += 1;
            emit(self.make_packet(remote, seg));
        }

        // FIN once all data is sent.
        if self.close_requested
            && self.fin_seq.is_none()
            && self.snd_nxt == self.buf_seq + self.send_buf.len() as u64
            && self.state == TcpState::Established
        {
            let seg = TcpSegment {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags {
                    fin: true,
                    ack: true,
                    syn: false,
                    rst: false,
                },
                window: self.advertised_window(),
                data: PayloadBytes::empty(),
            };
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt += 1;
            self.state = TcpState::FinSent;
            if self.rto_deadline.is_none() {
                self.rto_deadline = Some(now + self.rto);
            }
            self.pending_acks.clear();
            emitted += 1;
            emit(self.make_packet(remote, seg));
        }

        // One pure ACK per received segment still owed, each carrying its
        // receipt-time snapshot.
        while let Some((ack, window)) = self.pending_acks.pop_front() {
            emitted += 1;
            emit(self.make_packet(
                remote,
                TcpSegment {
                    seq: self.snd_nxt,
                    ack,
                    flags: TcpFlags::ACK,
                    window,
                    data: PayloadBytes::empty(),
                },
            ));
        }
        emitted
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.stats.timeouts += 1;
        let mss = f64::from(self.cfg.mss);
        match self.state {
            TcpState::SynSent | TcpState::SynRcvd => {
                self.syn_retries += 1;
                if self.syn_retries > self.cfg.max_syn_retries {
                    // Handshake abandoned: a black-holed or dead peer.
                    if self.state == TcpState::SynSent {
                        self.last_error = Some(TcpError::ConnectTimeout);
                    }
                    self.state = TcpState::Closed;
                    self.rto_deadline = None;
                    return;
                }
                // Handshake retransmission: poll() re-emits the SYN/SYN+ACK.
                self.snd_nxt = self.iss;
            }
            _ => {
                self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0 * mss);
                self.cwnd = mss;
                self.in_fast_recovery = false;
                self.dup_acks = 0;
                self.rtt_sample = None; // Karn
                self.pending_retransmit = true;
                trace::emit(now, || TraceEvent::TcpCwnd {
                    port: self.local.port,
                    cwnd: self.cwnd as u32,
                    ssthresh: self.ssthresh as u32,
                });
            }
        }
        self.rto = (self.rto * 2).min(self.cfg.max_rto);
        self.rto_deadline = Some(now + self.rto);
        trace::emit(now, || TraceEvent::TcpRto {
            port: self.local.port,
            rto_us: self.rto.as_micros(),
        });
    }

    fn retransmit_head(&mut self, remote: Addr) -> Option<Packet<Segment>> {
        if self.snd_una >= self.snd_nxt {
            return None;
        }
        // Is the head of the unacked region the FIN?
        if self.fin_seq == Some(self.snd_una) {
            self.stats.retransmits += 1;
            return Some(self.make_packet(
                remote,
                TcpSegment {
                    seq: self.snd_una,
                    ack: self.rcv_nxt,
                    flags: TcpFlags {
                        fin: true,
                        ack: true,
                        syn: false,
                        rst: false,
                    },
                    window: self.advertised_window(),
                    data: PayloadBytes::empty(),
                },
            ));
        }
        let off = (self.snd_una - self.buf_seq) as usize;
        let avail = self.send_buf.len().saturating_sub(off);
        let len = avail.min(self.cfg.mss as usize);
        if len == 0 {
            return None;
        }
        let data = self.send_buf.slice(off, len);
        self.stats.retransmits += 1;
        Some(self.make_packet(
            remote,
            TcpSegment {
                seq: self.snd_una,
                ack: self.rcv_nxt,
                flags: TcpFlags::ACK,
                window: self.advertised_window(),
                data,
            },
        ))
    }

    fn make_packet(&self, remote: Addr, seg: TcpSegment) -> Packet<Segment> {
        let size = seg.wire_size();
        Packet::new(self.local, remote, size, Segment::Tcp(seg))
    }

    /// When the socket next needs polling (its retransmission timer).
    pub fn next_wake(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// `true` when the socket has work a poll would emit (pure ACKs, a
    /// pending loss-recovery retransmission, or an abort's RST).
    pub fn has_pending_work(&self) -> bool {
        !self.pending_acks.is_empty() || self.pending_retransmit || self.pending_rst.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_net::HostId;

    fn addr(h: u32, p: u16) -> Addr {
        Addr::new(HostId(h), p)
    }

    /// Delivers every packet both directions until quiescent, with no loss
    /// and zero latency. Returns packets exchanged.
    fn pump(now: SimTime, a: &mut TcpSocket, b: &mut TcpSocket) -> usize {
        let mut exchanged = 0;
        loop {
            let mut progress = false;
            for pkt in a.poll(now) {
                if let Segment::Tcp(seg) = pkt.payload {
                    b.on_segment(now, pkt.src, seg);
                    exchanged += 1;
                    progress = true;
                }
            }
            for pkt in b.poll(now) {
                if let Segment::Tcp(seg) = pkt.payload {
                    a.on_segment(now, pkt.src, seg);
                    exchanged += 1;
                    progress = true;
                }
            }
            if !progress {
                return exchanged;
            }
        }
    }

    fn established_pair() -> (TcpSocket, TcpSocket) {
        let mut client = TcpSocket::new(addr(0, 1000), TcpConfig::default());
        let mut server = TcpSocket::new(addr(1, 554), TcpConfig::default());
        server.listen();
        client.connect(addr(1, 554), SimTime::ZERO);
        pump(SimTime::ZERO, &mut client, &mut server);
        assert!(client.is_established());
        assert!(server.is_established());
        (client, server)
    }

    #[test]
    fn handshake_establishes_both_ends() {
        established_pair();
    }

    #[test]
    fn transmit_and_retransmit_share_the_senders_backing_buffer() {
        let (mut c, mut _s) = established_pair();
        let original = PayloadBytes::from_vec((0..800u32).map(|i| (i % 256) as u8).collect());
        assert_eq!(c.send_bytes(original.clone()), 800);

        // First transmission: the segment's payload is a sub-slice of the
        // enqueued chunk, not a copy.
        let pkts = c.poll(SimTime::from_millis(1));
        let first: Vec<&TcpSegment> = pkts
            .iter()
            .filter_map(|p| match &p.payload {
                Segment::Tcp(seg) if !seg.data.is_empty() => Some(seg),
                _ => None,
            })
            .collect();
        assert_eq!(first.len(), 1);
        assert!(
            first[0].data.same_backing(&original),
            "segmentize must slice the sender's buffer, not copy it"
        );
        assert_eq!(first[0].data, original);

        // Drop the segment (never deliver it) and run past the RTO: the
        // retransmission also re-slices the same backing allocation.
        let rto_fires = c.next_wake().expect("rto armed");
        let pkts = c.poll(rto_fires + SimDuration::from_millis(1));
        let retx: Vec<&TcpSegment> = pkts
            .iter()
            .filter_map(|p| match &p.payload {
                Segment::Tcp(seg) if !seg.data.is_empty() => Some(seg),
                _ => None,
            })
            .collect();
        assert!(!retx.is_empty(), "timeout must produce a retransmission");
        assert!(
            retx[0].data.same_backing(&original),
            "retransmit must slice the sender's buffer, not copy it"
        );
        assert_eq!(retx[0].data, original);
        assert_eq!(c.stats().retransmits, 1);
    }

    #[test]
    fn data_flows_in_order() {
        let (mut c, mut s) = established_pair();
        let msg = b"DESCRIBE rtsp://server/clip.rm RTSP/1.0\r\n\r\n";
        assert_eq!(c.send(msg), msg.len());
        pump(SimTime::from_millis(1), &mut c, &mut s);
        assert_eq!(s.recv(4096), msg.to_vec());
    }

    #[test]
    fn large_transfer_is_lossless_and_ordered() {
        let (mut c, mut s) = established_pair();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        let mut now = SimTime::from_millis(1);
        while received.len() < data.len() {
            sent += c.send(&data[sent..]);
            pump(now, &mut c, &mut s);
            received.extend(s.recv(usize::MAX));
            now += SimDuration::from_millis(1);
        }
        assert_eq!(received, data);
    }

    #[test]
    fn lost_segment_is_fast_retransmitted() {
        // A wide initial window so enough segments are in flight for three
        // duplicate ACKs.
        let cfg = TcpConfig {
            initial_cwnd_segments: 8,
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new(addr(0, 1000), cfg);
        let mut s = TcpSocket::new(addr(1, 554), TcpConfig::default());
        s.listen();
        c.connect(addr(1, 554), SimTime::ZERO);
        pump(SimTime::ZERO, &mut c, &mut s);
        let now = SimTime::from_millis(1);
        let data = vec![7u8; 20 * 1460];
        c.send(&data);
        let pkts = c.poll(now);
        assert!(
            pkts.len() >= 2,
            "need at least 2 in flight, got {}",
            pkts.len()
        );
        // Drop the first data segment, deliver the rest.
        for pkt in pkts.into_iter().skip(1) {
            if let Segment::Tcp(seg) = pkt.payload {
                s.on_segment(now, pkt.src, seg);
            }
        }
        // Server generates dup ACKs; feed them back plus keep pumping so the
        // client can emit more segments, triggering >=3 dupacks.
        for step in 0..50 {
            let t = now + SimDuration::from_millis(step);
            pump(t, &mut c, &mut s);
            if c.stats().fast_retransmits > 0 {
                break;
            }
        }
        assert!(c.stats().fast_retransmits >= 1);
        // Eventually everything arrives.
        let mut got = Vec::new();
        for step in 50..100 {
            let t = now + SimDuration::from_millis(step);
            pump(t, &mut c, &mut s);
            got.extend(s.recv(usize::MAX));
        }
        assert_eq!(got.len(), data.len());
        assert!(got.iter().all(|b| *b == 7));
    }

    #[test]
    fn timeout_retransmits_and_backs_off() {
        let (mut c, mut _s) = established_pair();
        let now = SimTime::from_millis(1);
        c.send(b"hello");
        let first = c.poll(now);
        assert_eq!(first.len(), 1);
        // Peer never answers; jump past the RTO.
        let later = now + SimDuration::from_secs(4);
        let rexmit = c.poll(later);
        assert_eq!(rexmit.len(), 1);
        assert_eq!(c.stats().timeouts, 1);
        assert_eq!(c.stats().retransmits, 1);
        if let Segment::Tcp(seg) = &rexmit[0].payload {
            assert_eq!(seg.data, b"hello".to_vec());
        } else {
            panic!("expected TCP segment");
        }
        // cwnd collapsed to one MSS.
        assert_eq!(c.cwnd(), 1460);
    }

    #[test]
    fn slow_start_doubles_cwnd_per_rtt() {
        let (mut c, mut s) = established_pair();
        let initial = c.cwnd();
        c.send(&vec![0u8; 200_000]);
        // One "RTT": emit a window, ACK it all.
        let now = SimTime::from_millis(5);
        pump(now, &mut c, &mut s);
        s.recv(usize::MAX);
        assert!(
            c.cwnd() >= initial * 2 - 1460,
            "cwnd {} initial {initial}",
            c.cwnd()
        );
    }

    #[test]
    fn receiver_window_limits_sender() {
        let cfg = TcpConfig {
            recv_capacity: 4096,
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new(addr(0, 1), TcpConfig::default());
        let mut s = TcpSocket::new(addr(1, 2), cfg);
        s.listen();
        c.connect(addr(1, 2), SimTime::ZERO);
        pump(SimTime::ZERO, &mut c, &mut s);

        c.send(&vec![1u8; 64 * 1024]);
        pump(SimTime::from_millis(1), &mut c, &mut s);
        // Receiver never drained: at most its capacity is buffered.
        assert!(s.recv_available() <= 4096);
        // Drain and continue: transfer completes.
        let mut total = s.recv(usize::MAX).len();
        for step in 2..200 {
            pump(SimTime::from_millis(step), &mut c, &mut s);
            total += s.recv(usize::MAX).len();
            if total == 64 * 1024 {
                break;
            }
        }
        assert_eq!(total, 64 * 1024);
    }

    #[test]
    fn fin_closes_cleanly() {
        let (mut c, mut s) = established_pair();
        c.send(b"bye");
        c.close();
        pump(SimTime::from_millis(1), &mut c, &mut s);
        assert_eq!(s.recv(16), b"bye".to_vec());
        assert!(s.recv_finished());
        assert!(c.is_closed());
    }

    #[test]
    fn rst_aborts() {
        let (c, _s) = established_pair();
        let rst = TcpSegment {
            seq: 0,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..TcpFlags::default()
            },
            window: 0,
            data: PayloadBytes::empty(),
        };
        let mut c2 = c;
        c2.on_segment(SimTime::from_millis(1), addr(1, 554), rst);
        assert!(c2.is_closed());
    }

    #[test]
    fn rst_in_syn_sent_reports_refused() {
        let mut c = TcpSocket::new(addr(0, 1000), TcpConfig::default());
        c.connect(addr(1, 554), SimTime::ZERO);
        c.poll(SimTime::ZERO);
        let rst = TcpSegment {
            seq: 0,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..TcpFlags::default()
            },
            window: 0,
            data: PayloadBytes::empty(),
        };
        c.on_segment(SimTime::from_millis(1), addr(1, 554), rst);
        assert!(c.is_closed());
        assert_eq!(c.take_error(), Some(TcpError::Refused));
        assert_eq!(c.take_error(), None, "error is cleared on take");
        assert_eq!(c.next_wake(), None, "dead socket keeps no timer");
    }

    #[test]
    fn rst_when_established_reports_reset() {
        let (mut c, _s) = established_pair();
        let rst = TcpSegment {
            seq: 0,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..TcpFlags::default()
            },
            window: 0,
            data: PayloadBytes::empty(),
        };
        c.on_segment(SimTime::from_millis(1), addr(1, 554), rst);
        assert!(c.is_closed());
        assert_eq!(c.take_error(), Some(TcpError::Reset));
    }

    #[test]
    fn syn_retries_exhaust_into_connect_timeout() {
        let cfg = TcpConfig {
            max_syn_retries: 2,
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new(addr(0, 1000), cfg);
        c.connect(addr(1, 554), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut syns = 0;
        // Nothing ever answers; walk well past every backoff deadline.
        for _ in 0..64 {
            syns += c.poll(now).len();
            if c.is_closed() {
                break;
            }
            now = c.next_wake().expect("handshake timer armed");
        }
        assert!(c.is_closed());
        // Initial SYN + 2 retries.
        assert_eq!(syns, 3);
        assert_eq!(c.take_error(), Some(TcpError::ConnectTimeout));
        assert_eq!(c.next_wake(), None);
    }

    #[test]
    fn default_syn_retry_budget_outlives_a_session_deadline() {
        // The fault-free determinism guarantee: with the default config, a
        // connect only gives up after the cumulative backoff exceeds the
        // study's 150 s session deadline, so no fault-free session can see
        // a ConnectTimeout.
        let mut c = TcpSocket::new(addr(0, 1000), TcpConfig::default());
        c.connect(addr(1, 554), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        while !c.is_closed() {
            c.poll(now);
            match c.next_wake() {
                Some(t) => now = t,
                None => break,
            }
        }
        assert!(
            now > SimTime::from_secs(150),
            "gave up at {now}, inside the session deadline"
        );
    }

    #[test]
    fn abort_emits_rst_and_peer_observes_reset() {
        let (mut c, mut s) = established_pair();
        c.send(b"data the crash destroys");
        c.abort();
        assert!(c.is_closed());
        let pkts = c.poll(SimTime::from_millis(1));
        assert_eq!(pkts.len(), 1);
        let Segment::Tcp(seg) = &pkts[0].payload else {
            panic!("expected TCP")
        };
        assert!(seg.flags.rst);
        s.on_segment(SimTime::from_millis(1), pkts[0].src, seg.clone());
        assert!(s.is_closed());
        assert_eq!(s.take_error(), Some(TcpError::Reset));
    }

    #[test]
    fn reset_socket_reconnects_cleanly() {
        let (mut c, _old_server) = established_pair();
        let sent_before = c.stats().segments_sent;
        c.reset();
        assert!(c.is_closed());
        assert_eq!(c.remote(), None);
        assert_eq!(c.stats().segments_sent, sent_before, "stats survive reset");
        // Fresh handshake against a fresh listener succeeds.
        let mut s = TcpSocket::new(addr(1, 554), TcpConfig::default());
        s.listen();
        c.connect(addr(1, 554), SimTime::from_secs(1));
        pump(SimTime::from_secs(1), &mut c, &mut s);
        assert!(c.is_established());
        c.send(b"again");
        pump(SimTime::from_secs(2), &mut c, &mut s);
        assert_eq!(s.recv(16), b"again".to_vec());
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut c, mut s) = established_pair();
        let now = SimTime::from_millis(1);
        c.send(&vec![9u8; 5 * 1460]);
        let pkts = c.poll(now);
        // Deliver in reverse order.
        for pkt in pkts.into_iter().rev() {
            if let Segment::Tcp(seg) = pkt.payload {
                s.on_segment(now, pkt.src, seg);
            }
        }
        pump(now, &mut c, &mut s);
        let got = s.recv(usize::MAX);
        assert!(got.len() >= 2 * 1460, "got {}", got.len());
        assert!(got.iter().all(|b| *b == 9));
    }

    #[test]
    fn srtt_converges_to_path_rtt() {
        let (mut c, mut s) = established_pair();
        // Simulate a 100 ms RTT by delaying delivery of ACKs.
        let mut now = SimTime::from_millis(10);
        for _ in 0..20 {
            c.send(&vec![0u8; 1460]);
            let pkts = c.poll(now);
            let reply_at = now + SimDuration::from_millis(100);
            for pkt in pkts {
                if let Segment::Tcp(seg) = pkt.payload {
                    s.on_segment(reply_at, pkt.src, seg);
                }
            }
            for pkt in s.poll(reply_at) {
                if let Segment::Tcp(seg) = pkt.payload {
                    c.on_segment(reply_at, pkt.src, seg);
                }
            }
            s.recv(usize::MAX);
            now = reply_at + SimDuration::from_millis(1);
        }
        let srtt = c.srtt().expect("rtt measured");
        assert!((srtt.as_millis() as i64 - 100).abs() <= 15, "srtt {srtt}");
    }

    #[test]
    fn send_respects_buffer_capacity() {
        let cfg = TcpConfig {
            send_capacity: 1000,
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new(addr(0, 1), cfg);
        assert_eq!(c.send(&vec![0u8; 600]), 600);
        assert_eq!(c.send(&vec![0u8; 600]), 400);
        assert_eq!(c.send(&[1, 2, 3]), 0);
    }
}
