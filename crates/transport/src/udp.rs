//! UDP: unreliable, unordered datagrams.
//!
//! The streaming data path of roughly half of all RealVideo sessions. The
//! socket is a thin queue pair; reliability, ordering, and rate control are
//! the application's problem (which is exactly what the paper studies).

use std::collections::VecDeque;

use rv_net::{Addr, Packet};
use rv_sim::{PayloadBytes, SimTime};

use crate::segment::{Segment, UdpDatagram};

/// Lifetime counters for a UDP socket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// Datagrams handed to the network.
    pub datagrams_sent: u64,
    /// Datagrams received.
    pub datagrams_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
}

/// An unconnected UDP socket.
#[derive(Debug)]
pub struct UdpSocket {
    local: Addr,
    outbox: VecDeque<Packet<Segment>>,
    inbox: VecDeque<(Addr, PayloadBytes)>,
    /// Bound on buffered inbound datagrams; beyond this, oldest are dropped
    /// (mirrors kernel socket-buffer overflow for a slow application).
    inbox_capacity: usize,
    stats: UdpStats,
}

impl UdpSocket {
    /// Creates a socket bound to `local`.
    pub fn new(local: Addr) -> Self {
        UdpSocket {
            local,
            outbox: VecDeque::new(),
            inbox: VecDeque::new(),
            inbox_capacity: 4096,
            stats: UdpStats::default(),
        }
    }

    /// The local endpoint.
    pub fn local(&self) -> Addr {
        self.local
    }

    /// Lifetime counters.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }

    /// Queues a datagram to `dst`. The payload is a shared slice, so
    /// callers that already hold a [`PayloadBytes`] hand it over without
    /// copying.
    pub fn send_to(&mut self, dst: Addr, data: impl Into<PayloadBytes>) {
        let data = data.into();
        self.stats.datagrams_sent += 1;
        self.stats.bytes_sent += data.len() as u64;
        let dgram = UdpDatagram { data };
        let size = dgram.wire_size();
        self.outbox
            .push_back(Packet::new(self.local, dst, size, Segment::Udp(dgram)));
    }

    /// Delivers an inbound datagram (called by the stack demux).
    pub fn on_datagram(&mut self, src: Addr, data: PayloadBytes) {
        self.stats.datagrams_received += 1;
        self.stats.bytes_received += data.len() as u64;
        if self.inbox.len() == self.inbox_capacity {
            self.inbox.pop_front();
        }
        self.inbox.push_back((src, data));
    }

    /// Pops the next received datagram as a shared slice (no copy).
    pub fn recv(&mut self) -> Option<(Addr, PayloadBytes)> {
        self.inbox.pop_front()
    }

    /// Datagrams waiting to be read.
    pub fn recv_queue_len(&self) -> usize {
        self.inbox.len()
    }

    /// Drains queued outbound packets (the stack hands them to the network).
    pub fn poll(&mut self, _now: SimTime) -> Vec<Packet<Segment>> {
        self.outbox.drain(..).collect()
    }

    /// Drains queued outbound packets into `emit` without an intermediate
    /// `Vec`. Returns the number of packets emitted.
    pub fn poll_into(&mut self, _now: SimTime, emit: &mut dyn FnMut(Packet<Segment>)) -> usize {
        let n = self.outbox.len();
        for pkt in self.outbox.drain(..) {
            emit(pkt);
        }
        n
    }

    /// `true` when a poll would emit packets (queued outbound datagrams).
    pub fn has_pending_work(&self) -> bool {
        !self.outbox.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_net::HostId;

    fn addr(h: u32, p: u16) -> Addr {
        Addr::new(HostId(h), p)
    }

    #[test]
    fn send_produces_wire_packets() {
        let mut s = UdpSocket::new(addr(0, 5000));
        s.send_to(addr(1, 6000), vec![1, 2, 3]);
        let pkts = s.poll(SimTime::ZERO);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].size, 28 + 3);
        assert_eq!(pkts[0].dst, addr(1, 6000));
        match &pkts[0].payload {
            Segment::Udp(d) => assert_eq!(d.data, vec![1, 2, 3]),
            _ => panic!("expected UDP"),
        }
    }

    #[test]
    fn recv_returns_in_arrival_order() {
        let mut s = UdpSocket::new(addr(0, 5000));
        s.on_datagram(addr(1, 1), vec![1].into());
        s.on_datagram(addr(1, 1), vec![2].into());
        assert_eq!(s.recv().unwrap().1, vec![1]);
        assert_eq!(s.recv().unwrap().1, vec![2]);
        assert!(s.recv().is_none());
    }

    #[test]
    fn inbox_overflow_drops_oldest() {
        let mut s = UdpSocket::new(addr(0, 1));
        s.inbox_capacity = 2;
        s.on_datagram(addr(1, 1), vec![1].into());
        s.on_datagram(addr(1, 1), vec![2].into());
        s.on_datagram(addr(1, 1), vec![3].into());
        assert_eq!(s.recv_queue_len(), 2);
        assert_eq!(s.recv().unwrap().1, vec![2]);
    }

    #[test]
    fn stats_track_bytes() {
        let mut s = UdpSocket::new(addr(0, 1));
        s.send_to(addr(1, 1), vec![0; 10]);
        s.on_datagram(addr(1, 1), vec![0; 4].into());
        assert_eq!(s.stats().bytes_sent, 10);
        assert_eq!(s.stats().bytes_received, 4);
        assert_eq!(s.stats().datagrams_sent, 1);
        assert_eq!(s.stats().datagrams_received, 1);
    }
}
