//! Property-based tests: TCP's reliable-delivery invariant under arbitrary
//! loss patterns, segment arithmetic, and stack demux invariants.

use proptest::prelude::*;
use rv_net::{Addr, HostId};
use rv_sim::{PayloadBytes, SimDuration, SimTime};
use rv_transport::{Segment, TcpConfig, TcpFlags, TcpSegment, TcpSocket};

fn addr(h: u32, p: u16) -> Addr {
    Addr::new(HostId(h), p)
}

/// Drives two directly-connected sockets, dropping packets per `drops`
/// (cycled) and advancing time so RTO can fire. Returns bytes received.
fn lossy_transfer(payload: &[u8], drops: &[bool]) -> Vec<u8> {
    let mut client = TcpSocket::new(addr(0, 1), TcpConfig::default());
    let mut server = TcpSocket::new(addr(1, 2), TcpConfig::default());
    server.listen();
    client.connect(addr(1, 2), SimTime::ZERO);

    let mut received = Vec::new();
    let mut drop_idx = 0;
    let mut sent = 0;
    let mut now = SimTime::ZERO;
    // Generous budget: every loss costs at most one (backed-off) RTO.
    for _ in 0..4_000 {
        if client.is_established() {
            sent += client.send(&payload[sent..]);
        }
        let mut progressed = false;
        for pkt in client.poll(now) {
            let dropped = !drops.is_empty() && drops[drop_idx % drops.len()];
            drop_idx += 1;
            if !dropped {
                if let Segment::Tcp(seg) = pkt.payload {
                    server.on_segment(now, pkt.src, seg);
                    progressed = true;
                }
            }
        }
        for pkt in server.poll(now) {
            // The reverse path (ACKs, SYN+ACK) is lossless: the property
            // under test is data-path recovery.
            if let Segment::Tcp(seg) = pkt.payload {
                client.on_segment(now, pkt.src, seg);
                progressed = true;
            }
        }
        received.extend(server.recv(usize::MAX));
        if received.len() == payload.len() {
            break;
        }
        if !progressed {
            // Idle: jump to the next retransmission deadline.
            now = client
                .next_wake()
                .unwrap_or(now + SimDuration::from_secs(1))
                .max(now + SimDuration::from_millis(1));
        }
    }
    received
}

/// Like [`lossy_transfer`] but the application writes through the
/// shared-slice path: each chunk goes in via `send_bytes` (ownership of a
/// [`PayloadBytes`]) or `send` (borrowed slice) per `as_bytes`, and each
/// round's data-path segments are delivered in reverse order when the
/// corresponding `reorder` flag fires (forcing out-of-order reassembly
/// and duplicate ACKs on top of the losses).
fn lossy_chunked_transfer(
    chunks: &[Vec<u8>],
    as_bytes: &[bool],
    drops: &[bool],
    reorder: &[bool],
) -> Vec<u8> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut client = TcpSocket::new(addr(0, 1), TcpConfig::default());
    let mut server = TcpSocket::new(addr(1, 2), TcpConfig::default());
    server.listen();
    client.connect(addr(1, 2), SimTime::ZERO);

    let mut received = Vec::new();
    let mut drop_idx = 0;
    let mut chunk_idx = 0;
    let mut chunk_off = 0;
    let mut now = SimTime::ZERO;
    for round in 0..6_000 {
        while client.is_established() && chunk_idx < chunks.len() {
            let chunk = &chunks[chunk_idx];
            let accepted = if as_bytes[chunk_idx % as_bytes.len()] {
                let owned = PayloadBytes::from_vec(chunk[chunk_off..].to_vec());
                client.send_bytes(owned)
            } else {
                client.send(&chunk[chunk_off..])
            };
            chunk_off += accepted;
            if chunk_off < chunk.len() {
                break; // send buffer full; retry after some ACKs drain it
            }
            chunk_idx += 1;
            chunk_off = 0;
        }
        let mut progressed = false;
        let mut data_path: Vec<TcpSegment> = Vec::new();
        for pkt in client.poll(now) {
            let dropped = !drops.is_empty() && drops[drop_idx % drops.len()];
            drop_idx += 1;
            if !dropped {
                if let Segment::Tcp(seg) = pkt.payload {
                    data_path.push(seg);
                }
            }
        }
        if !reorder.is_empty() && reorder[round % reorder.len()] {
            data_path.reverse();
        }
        for seg in data_path {
            server.on_segment(now, addr(0, 1), seg);
            progressed = true;
        }
        for pkt in server.poll(now) {
            if let Segment::Tcp(seg) = pkt.payload {
                client.on_segment(now, pkt.src, seg);
                progressed = true;
            }
        }
        received.extend(server.recv(usize::MAX));
        if received.len() == total && chunk_idx == chunks.len() {
            break;
        }
        if !progressed {
            now = client
                .next_wake()
                .unwrap_or(now + SimDuration::from_secs(1))
                .max(now + SimDuration::from_millis(1));
        }
    }
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The rope-backed send path (mixed owned-chunk and borrowed-slice
    /// writes) delivers the exact concatenated byte stream no matter how
    /// sends are sized or how the wire drops and reorders segments —
    /// byte-identical to what the old contiguous-`Vec` sender delivered.
    #[test]
    fn rope_backed_sends_deliver_identical_stream(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..4_000), 1..12),
        as_bytes in prop::collection::vec(any::<bool>(), 1..12),
        mut drops in prop::collection::vec(prop::bool::weighted(0.15), 1..48),
        reorder in prop::collection::vec(prop::bool::weighted(0.2), 1..16),
    ) {
        // An all-true drop cycle loses every packet forever; keep one
        // live slot so the transfer is completable by construction.
        drops.push(false);
        let expected: Vec<u8> = chunks.iter().flatten().copied().collect();
        let received = lossy_chunked_transfer(&chunks, &as_bytes, &drops, &reorder);
        prop_assert_eq!(received, expected);
    }

    /// Whatever the loss pattern, TCP delivers the exact byte stream.
    #[test]
    fn tcp_delivers_exactly_despite_loss(
        payload in prop::collection::vec(any::<u8>(), 1..20_000),
        drops in prop::collection::vec(prop::bool::weighted(0.2), 1..64),
    ) {
        let received = lossy_transfer(&payload, &drops);
        prop_assert_eq!(received, payload);
    }

    /// Sequence-space arithmetic: seq_end = seq + data + syn + fin.
    #[test]
    fn segment_seq_space(
        seq in any::<u32>(),
        len in 0usize..3000,
        syn in any::<bool>(),
        fin in any::<bool>(),
    ) {
        let seg = TcpSegment {
            seq: u64::from(seq),
            ack: 0,
            flags: TcpFlags { syn, ack: false, fin, rst: false },
            window: 0,
            data: vec![0; len].into(),
        };
        prop_assert_eq!(
            seg.seq_end(),
            u64::from(seq) + len as u64 + u64::from(syn) + u64::from(fin)
        );
        prop_assert_eq!(seg.wire_size(), 40 + len as u32);
    }

    /// send() never accepts more than capacity and never loses accepted bytes
    /// from its own accounting.
    #[test]
    fn send_buffer_accounting(chunks in prop::collection::vec(1usize..5000, 1..20)) {
        let cfg = TcpConfig { send_capacity: 16 * 1024, ..TcpConfig::default() };
        let mut sock = TcpSocket::new(addr(0, 1), cfg);
        let mut accepted_total = 0usize;
        for n in chunks {
            let accepted = sock.send(&vec![0u8; n]);
            prop_assert!(accepted <= n);
            accepted_total += accepted;
            prop_assert!(accepted_total <= 16 * 1024);
            prop_assert_eq!(sock.unacked_and_unsent(), accepted_total);
        }
    }
}
