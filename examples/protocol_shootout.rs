//! TCP vs UDP data transport across a sweep of path conditions — the
//! question behind the paper's Figures 16–18 and 24: does RealVideo's UDP
//! mode behave like TCP, and does either deliver better video?
//!
//! ```text
//! cargo run --release --example protocol_shootout
//! ```

use rv_media::{Clip, ContentKind};
use rv_net::LinkParams;
use rv_rtsp::TransportPreference;
use rv_sim::{SimDuration, SimTime};
use rv_stats::table;
use rv_tracer::two_host_world;

/// One path condition to test.
struct Path {
    name: &'static str,
    rate_bps: f64,
    delay_ms: u64,
    loss: f64,
}

fn run_session(path: &Path, pref: TransportPreference, seed: u64) -> rv_tracer::SessionMetrics {
    let params = LinkParams::lan()
        .rate(path.rate_bps)
        .delay(SimDuration::from_millis(path.delay_ms))
        .loss(path.loss)
        .queue(64 * 1024);
    let clip = Clip::new(
        "shootout.rm",
        SimDuration::from_secs(300),
        ContentKind::Sports,
    );
    let max_bw = (path.rate_bps * 0.9) as u32;
    two_host_world(params, clip, seed, |c, _| {
        c.transport_pref = pref;
        c.max_bandwidth_bps = max_bw;
    })
    .run(SimTime::from_secs(150))
}

fn main() {
    let paths = [
        Path {
            name: "clean broadband",
            rate_bps: 500_000.0,
            delay_ms: 30,
            loss: 0.0,
        },
        Path {
            name: "lossy broadband",
            rate_bps: 500_000.0,
            delay_ms: 60,
            loss: 0.02,
        },
        Path {
            name: "transoceanic",
            rate_bps: 300_000.0,
            delay_ms: 150,
            loss: 0.01,
        },
        Path {
            name: "modem",
            rate_bps: 45_000.0,
            delay_ms: 120,
            loss: 0.005,
        },
    ];

    let mut rows = Vec::new();
    for path in &paths {
        for (label, pref) in [
            ("UDP", TransportPreference::ForceUdp),
            ("TCP", TransportPreference::ForceTcp),
        ] {
            let m = run_session(path, pref, 0xBEEF);
            rows.push(vec![
                path.name.to_string(),
                label.to_string(),
                format!("{:.1}", m.frame_rate),
                m.jitter_ms.map_or("-".into(), |j| format!("{j:.0}")),
                format!("{:.0}", m.bandwidth_kbps),
                m.packets_lost.to_string(),
                m.rebuffer_events.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "path",
                "transport",
                "fps",
                "jitter(ms)",
                "kbps",
                "lost",
                "rebuffers"
            ],
            &rows
        )
    );
    println!("The paper's finding: UDP and TCP deliver comparable video quality and");
    println!("bandwidth — RealVideo's UDP mode is congestion-responsive (Figs 17, 18, 24).");
}
