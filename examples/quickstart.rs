//! Quickstart: stream one RealVideo clip across a simulated network and
//! print the statistics RealTracer would have recorded.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rv_media::{Clip, ContentKind};
use rv_net::{Addr, HostId, LinkParams, NetBuilder};
use rv_server::{Catalog, RealServer, ServerConfig};
use rv_sim::{SimDuration, SimRng, SimTime};
use rv_tracer::{client_data_tcp_config, ports, ClientConfig, SessionWorld, TracerClient};
use rv_transport::{Segment, Stack, TcpConfig};

fn main() {
    // 1. A two-host network: client <-> server over a 500 kbps, 40 ms path.
    let mut b = NetBuilder::new();
    let client_node = b.host();
    let server_node = b.host();
    b.duplex(
        client_node,
        server_node,
        LinkParams::lan()
            .rate(500_000.0)
            .delay(SimDuration::from_millis(40))
            .queue(64 * 1024),
    );
    let mut rng = SimRng::seed_from_u64(7);
    let net = b.build_with_payload::<Segment>(&mut rng);

    // 2. Transport stacks and sockets on each host.
    let mut client_stack = Stack::new(HostId(0));
    let mut server_stack = Stack::new(HostId(1));
    let s_ctrl = server_stack.tcp_socket(ports::CTRL, TcpConfig::default());
    let s_data = server_stack.tcp_socket(ports::DATA_TCP, TcpConfig::default());
    let s_udp = server_stack.udp_socket(ports::DATA_UDP);
    server_stack.tcp(s_ctrl).listen();
    server_stack.tcp(s_data).listen();
    let c_ctrl = client_stack.tcp_socket(ports::CLIENT_CTRL, TcpConfig::default());
    let c_data = client_stack.tcp_socket(ports::CLIENT_DATA, client_data_tcp_config());
    let c_udp = client_stack.udp_socket(ports::CLIENT_UDP);

    // 3. A server with one clip; a client that watches it for a minute.
    let mut catalog = Catalog::new();
    catalog.add(Clip::new(
        "news1.rm",
        SimDuration::from_secs(300),
        ContentKind::News,
    ));
    let server = RealServer::new(ServerConfig::default(), catalog, s_ctrl, s_data, s_udp, 42);
    let client_cfg = ClientConfig::new(
        "rtsp://server/news1.rm",
        Addr::new(HostId(1), ports::CTRL),
        Addr::new(HostId(1), ports::DATA_TCP),
    );
    let client = TracerClient::new(client_cfg, c_ctrl, c_data, c_udp);

    // 4. Run the world and report.
    let mut world = SessionWorld::new(net, client_stack, server_stack, server, client);
    let m = world.run(SimTime::from_secs(150));

    println!("outcome            : {:?}", m.outcome);
    println!("transport          : {}", m.protocol);
    println!(
        "encoded            : {} kbps @ {} fps",
        m.encoded_bps / 1000,
        m.encoded_fps
    );
    println!("measured frame rate: {:.1} fps", m.frame_rate);
    println!(
        "jitter             : {} ms",
        m.jitter_ms.map_or("n/a".into(), |j| format!("{j:.1}"))
    );
    println!("bandwidth          : {:.0} kbps", m.bandwidth_kbps);
    println!(
        "startup delay      : {:.1} s (prebuffering)",
        m.startup_delay.map_or(0.0, |d| d.as_secs_f64())
    );
    println!(
        "frames             : {} played, {} dropped, {} FEC-recovered",
        m.frames_played, m.frames_dropped, m.frames_recovered
    );
    println!(
        "rebuffering        : {} events, {:.1} s halted",
        m.rebuffer_events,
        m.rebuffer_time.as_secs_f64()
    );
}
