// Re-runs one campaign session with the flight recorder armed and prints
// the captured timeline: link outages, drops, retransmits, rung switches,
// rebuffers, client phase transitions, and the final outcome.
//
// The session is taken from the campaign *plan*, so the world traced here
// is byte-for-byte the one the campaign runner would execute for this
// (user, clip) pair. This is the same engine as `repro trace`; use that
// subcommand when you want the JSONL / Chrome artifacts on disk.
//
//   cargo run --release --example session_debug -- 9 us_cnn-clip08.rm --faults

use rv_sim::trace::TraceEvent;
use rv_study::{plan_campaign, trace_session, StudyParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_user: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(2);
    let want_clip = args.get(1).cloned().unwrap_or_default();
    let faults = args.iter().any(|a| a == "--faults");

    let mut params = StudyParams::default();
    if faults {
        params.faults = rv_sim::FaultScenario::default_on();
    }

    // No clip given: pick the user's first planned clip so the example
    // always has something to show.
    let clip = if want_clip.is_empty() || want_clip == "--faults" {
        let plan = plan_campaign(params);
        let Some(user_idx) = plan
            .population
            .participants
            .iter()
            .position(|u| u.id == want_user)
        else {
            eprintln!("no participant with id {want_user} (ids are 0..62)");
            std::process::exit(2);
        };
        let jobs = plan.user_jobs(user_idx);
        plan.clip_names[jobs[0].playlist_slot].to_string()
    } else {
        want_clip
    };

    let trace = match trace_session(params, want_user, &clip) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    println!(
        "user {} clip {} available={} faulted={}",
        trace.user_id, trace.clip, trace.available, trace.faulted
    );

    // The full timeline is huge (queue depths, pump batches); print the
    // narrative events and a tally of the rest.
    let mut tallies: Vec<(&'static str, u64)> = Vec::new();
    for rec in &trace.records {
        let verbose = matches!(
            rec.ev,
            TraceEvent::QueueDepth { .. }
                | TraceEvent::ServerPump { .. }
                | TraceEvent::TcpCwnd { .. }
                | TraceEvent::PacketDrop { .. }
        );
        if verbose {
            let name = rec.ev.name();
            match tallies.iter_mut().find(|(n, _)| *n == name) {
                Some((_, count)) => *count += 1,
                None => tallies.push((name, 1)),
            }
            continue;
        }
        let t = rec.at.as_micros();
        println!("t={:9.3}s  {:?}", t as f64 / 1e6, rec.ev);
    }
    for (name, count) in &tallies {
        println!("  ... plus {count} {name} events (see `repro trace` for the full dump)");
    }

    println!("\nmetrics: {:#?}", trace.metrics);
    println!("counters:");
    for (counter, value) in trace.counters.iter() {
        if value > 0 {
            println!("  {:>24} = {value}", counter.name());
        }
    }
}
