// Re-runs one campaign session with per-second diagnostics to inspect
// pacing, rung switching, thinning, and player buffer health.
//
// The session is taken from the campaign *plan*, so the world simulated
// here is byte-for-byte the one the campaign runner would execute for
// this (user, server) pair.

use rv_sim::{SimDuration, SimTime};
use rv_study::{build_session_world, plan_campaign, StudyParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_user: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(2);
    let want_server = args.get(1).cloned().unwrap_or_else(|| "CAN/CBC".into());

    let plan = plan_campaign(StudyParams {
        scale: 0.05,
        ..StudyParams::default()
    });
    let Some(user) = plan
        .population
        .participants
        .iter()
        .find(|u| u.id == want_user)
    else {
        eprintln!("no participant with id {want_user} (ids are 0..62)");
        std::process::exit(2);
    };
    println!(
        "user {}: {:?} {:?} down={:.0} pref={:?} fw={:?} cpu={}",
        user.id,
        user.country,
        user.connection,
        user.access_down_bps,
        user.transport_pref,
        user.firewall,
        user.pc.cpu_power()
    );

    let visited: Vec<rv_study::SessionJob> = plan
        .collect_jobs()
        .into_iter()
        .filter(|j| j.user_id == user.id)
        .collect();
    let job = visited
        .iter()
        .find(|j| plan.roster[j.server].name == want_server)
        .unwrap_or_else(|| {
            let j = &visited[0];
            eprintln!(
                "user {} never visits {want_server}; using {} instead",
                user.id, plan.roster[j.server].name
            );
            j
        });
    let site = &plan.roster[job.server];
    let entry = &plan.playlist[job.playlist_slot];
    println!(
        "server {} clip {} content {:?} seed {} available {}",
        site.name, entry.clip.name, entry.clip.content, job.session_seed, job.available
    );

    let mut w = build_session_world(
        user,
        site,
        &entry.clip,
        SimDuration::from_secs(60),
        job.session_seed,
        &job.fault_plan,
    );
    for sec in 1..=80u64 {
        w.run(SimTime::from_secs(sec));
        let played = w
            .client
            .events()
            .iter()
            .filter(|e| e.played_at.is_some())
            .count();
        let dropped = w
            .client
            .events()
            .iter()
            .filter(|e| e.drop_reason.is_some())
            .count();
        let s = w.server.stats();
        println!(
            "t={sec:2} rung={:?} allowed={:6.0} loss={:.4} sent_v={:4} thinned={:3} played={played:4} dropped={dropped}",
            w.server.debug_stream().map(|d| (d.0, d.3 / 1000)),
            w.server.allowed_bps(),
            w.server.debug_loss(),
            s.frames_sent,
            s.frames_thinned,
        );
        if w.client.is_done() {
            break;
        }
    }
    let m = w.run(SimTime::from_secs(150));
    println!("{m:#?}");
    println!("server: {:?}", w.server.stats());
    // Gap and lateness analysis.
    let played: Vec<_> = w
        .client
        .events()
        .iter()
        .filter(|e| e.played_at.is_some())
        .collect();
    let gaps: Vec<i64> = played
        .windows(2)
        .map(|p| {
            (p[1].played_at.unwrap().as_micros() as i64
                - p[0].played_at.unwrap().as_micros() as i64)
                / 1000
        })
        .collect();
    let mut sorted = gaps.clone();
    sorted.sort();
    if !sorted.is_empty() {
        println!(
            "gaps ms: min={} p25={} p50={} p75={} p90={} p99={} max={}",
            sorted[0],
            sorted[sorted.len() / 4],
            sorted[sorted.len() / 2],
            sorted[sorted.len() * 3 / 4],
            sorted[sorted.len() * 9 / 10],
            sorted[sorted.len() * 99 / 100],
            sorted[sorted.len() - 1]
        );
        let big: Vec<&i64> = sorted.iter().filter(|g| **g > 300).collect();
        println!("gaps>300ms: {} of {}", big.len(), sorted.len());
    }
}
