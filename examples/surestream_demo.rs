//! SureStream adaptation in action: a mid-session congestion episode forces
//! the server down the encoding ladder and back up, visible in a per-second
//! timeline — the mechanism of the paper's Section II.C.
//!
//! ```text
//! cargo run --release --example surestream_demo
//! ```

use rv_media::{Clip, ContentKind};
use rv_net::{CongestionParams, LinkParams};
use rv_sim::{SimDuration, SimTime};
use rv_tracer::two_host_world;

fn main() {
    // A 600 kbps path with aggressive background cross traffic: long
    // congestion episodes squeeze the stream repeatedly.
    let congestion = CongestionParams {
        mean_level: 0.35,
        variability: 0.25,
        mean_epoch: SimDuration::from_secs(6),
        burst_prob: 0.15,
    };
    let params = LinkParams::lan()
        .rate(600_000.0)
        .delay(SimDuration::from_millis(50))
        .queue(64 * 1024)
        .cross_traffic(congestion, 0.05);
    let clip = Clip::new(
        "concert.rm",
        SimDuration::from_secs(300),
        ContentKind::Music,
    );
    let mut world = two_host_world(params, clip, 0x5117, |c, _| {
        c.watch_limit = SimDuration::from_secs(90);
        c.max_bandwidth_bps = 512_000;
    });

    println!("t(s)  rung  allowed(kbps)  loss     sent   thinned  played");
    let mut prev_rung = usize::MAX;
    for sec in 1..=95u64 {
        world.run(SimTime::from_secs(sec));
        let stats = world.server.stats();
        let played = world
            .client
            .events()
            .iter()
            .filter(|e| e.played_at.is_some())
            .count();
        if let Some((rung, _, _, _)) = world.server.debug_stream() {
            let marker = if rung != prev_rung { " <-- switch" } else { "" };
            prev_rung = rung;
            println!(
                "{sec:4}  {rung:4}  {:13.0}  {:.4}  {:5}  {:7}  {played:6}{marker}",
                world.server.allowed_bps() / 1e3,
                world.server.debug_loss(),
                stats.frames_sent,
                stats.frames_thinned,
            );
        }
        if world.client.is_done() {
            break;
        }
    }
    let m = world.run(SimTime::from_secs(200));
    let stats = world.server.stats();
    println!(
        "\nsession: {:.1} fps, jitter {} ms, {} down-switches, {} up-switches, {} thinned frames",
        m.frame_rate,
        m.jitter_ms.map_or("-".into(), |j| format!("{j:.0}")),
        stats.switches_down,
        stats.switches_up,
        stats.frames_thinned,
    );
}
