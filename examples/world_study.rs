//! Replays a scaled-down version of the June 2001 measurement campaign and
//! prints the study's headline findings.
//!
//! ```text
//! cargo run --release --example world_study            # 10% of sessions
//! cargo run --release --example world_study -- 0.5     # half of them
//! ```

use realvideo_core::figure;
use rv_study::{run_campaign, StudyParams};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.1)
        .clamp(0.01, 1.0);

    eprintln!("replaying the June 2001 campaign at scale {scale}...");
    let data = run_campaign(StudyParams {
        scale,
        ..StudyParams::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        std::process::exit(1);
    });

    let agg = &data.aggregates;
    println!(
        "{} participants, {} sessions, {} played, {} rated, {} unavailable\n",
        data.participants, agg.total_attempts, agg.played, agg.rated, agg.unavailable,
    );

    for id in ["fig11", "fig16", "fig20", "fig26"] {
        let f = figure(id, &data).expect("known figure");
        println!("--- {}: {} ---", f.id, f.title);
        // Print the headline line(s) only; `repro` prints full plots.
        for line in f.body.lines().take(3) {
            println!("{line}");
        }
        println!();
    }

    println!("run `cargo run --release -p realvideo-core --bin repro -- all` for every figure");
}
