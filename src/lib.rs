//! # realvideo — reproduction of *An Empirical Study of RealVideo
//! Performance Across the Internet* (Wang, Claypool, Zuo — 2001)
//!
//! This crate is the workspace's front door: it re-exports the public API
//! of [`realvideo_core`] (which in turn exposes every subsystem) so the
//! examples and integration tests in this repository have a single import
//! root.
//!
//! See `README.md` for the architecture tour and `DESIGN.md` for the
//! paper-to-module mapping.

#![forbid(unsafe_code)]

pub use realvideo_core::*;
