//! Streaming/retained equivalence: the aggregates folded live during a
//! campaign must be exactly what a rebuild from the retained record list
//! produces, and every figure rendered from either must match bit for
//! bit. This is the contract that lets `repro` default to the
//! constant-memory path without changing a single published number.

use realvideo_core::all_figures;
use rv_study::{run_campaign_with_records, CampaignAggregates, StudyParams};

fn check_equivalence(params: StudyParams, label: &str) {
    let data = run_campaign_with_records(params).expect("campaign runs");
    // The campaign streamed `data.aggregates` as each session finished;
    // rebuilding from the retained records must land on the same bits.
    let rebuilt = CampaignAggregates::from_records(data.records());
    assert_eq!(
        data.aggregates, rebuilt,
        "streaming vs rebuilt aggregates differ ({label})"
    );

    // And therefore every rendered figure is byte-identical.
    let mut from_rebuilt = data.clone();
    from_rebuilt.aggregates = rebuilt;
    let a = all_figures(&data);
    let b = all_figures(&from_rebuilt);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.body, y.body, "figure {} differs ({label})", x.id);
    }

    // The failure report is also aggregate-derived on both paths.
    assert_eq!(
        format!("{}", data.failure_report()),
        format!("{}", from_rebuilt.failure_report()),
        "failure report differs ({label})"
    );
}

#[test]
fn streaming_aggregates_match_retained_records_fault_free() {
    check_equivalence(
        StudyParams {
            scale: 0.2,
            ..StudyParams::default()
        },
        "faults off",
    );
}

#[test]
fn streaming_aggregates_match_retained_records_with_faults() {
    check_equivalence(
        StudyParams {
            scale: 0.2,
            faults: rv_sim::FaultScenario::default_on(),
            ..StudyParams::default()
        },
        "faults on",
    );
}
