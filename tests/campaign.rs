//! Cross-crate integration: the full campaign pipeline, from world model
//! through sessions to figures, checked against the paper's headline
//! claims at reduced scale.

use realvideo_core::{all_figures, figure};
use rv_rtsp::TransportKind;
use rv_stats::Cdf;
use rv_study::{run_campaign_with_records, ConnectionClass, StudyParams, UserRegion};

fn campaign() -> rv_study::StudyData {
    run_campaign_with_records(StudyParams {
        scale: 0.08,
        ..StudyParams::default()
    })
    .expect("campaign runs")
}

#[test]
fn campaign_structure_matches_study() {
    let data = campaign();
    assert_eq!(data.participants, 63);
    let countries: std::collections::BTreeSet<_> =
        data.records().iter().map(|r| r.user_country).collect();
    assert_eq!(countries.len(), 12, "12 user countries");
    let servers: std::collections::BTreeSet<_> =
        data.records().iter().map(|r| r.server_name).collect();
    assert!(servers.len() >= 9, "most of the 11 servers visited");
}

#[test]
fn unavailability_is_about_ten_percent() {
    let data = campaign();
    let unavailable = data.records().iter().filter(|r| !r.available).count();
    let frac = unavailable as f64 / data.records().len() as f64;
    assert!((0.04..0.20).contains(&frac), "unavailable fraction {frac}");
}

#[test]
fn overall_frame_rate_shape_matches_figure_11() {
    let data = campaign();
    let fps: Vec<f64> = data.played().map(|r| r.metrics.frame_rate).collect();
    let cdf = Cdf::from_samples(&fps).expect("played sessions");
    // Paper: mean 10 fps, ~25% below 3 fps, ~25% at or above 15 fps,
    // <1% at full-motion rates. Tolerances are generous: reduced scale.
    assert!((6.0..13.0).contains(&cdf.mean()), "mean fps {}", cdf.mean());
    assert!(
        (0.10..0.40).contains(&cdf.at(3.0)),
        "below 3 fps: {}",
        cdf.at(3.0)
    );
    let at_least_15 = 1.0 - cdf.at(15.0 - 1e-9);
    assert!(
        (0.08..0.40).contains(&at_least_15),
        ">=15 fps: {at_least_15}"
    );
    let full_motion = 1.0 - cdf.at(24.0 - 1e-9);
    assert!(full_motion < 0.05, "full motion fraction {full_motion}");
}

#[test]
fn modem_is_clearly_worse_than_broadband() {
    let data = campaign();
    let mean = |class: ConnectionClass| {
        let v: Vec<f64> = data
            .played()
            .filter(|r| r.connection == class)
            .map(|r| r.metrics.frame_rate)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let modem = mean(ConnectionClass::Modem56k);
    let dsl = mean(ConnectionClass::DslCable);
    let lan = mean(ConnectionClass::T1Lan);
    assert!(modem < dsl * 0.6, "modem {modem} vs dsl {dsl}");
    // Paper: DSL/cable roughly matches T1/LAN.
    assert!(
        (dsl - lan).abs() < dsl.max(lan) * 0.5,
        "dsl {dsl} vs lan {lan}"
    );
}

#[test]
fn jitter_shape_matches_figure_20() {
    let data = campaign();
    let jitter: Vec<f64> = data.played().filter_map(|r| r.metrics.jitter_ms).collect();
    let cdf = Cdf::from_samples(&jitter).expect("jitter samples");
    // Paper: just over 50% imperceptible (<=50 ms), ~15% >=300 ms.
    assert!(
        (0.30..0.70).contains(&cdf.at(50.0)),
        "imperceptible fraction {}",
        cdf.at(50.0)
    );
    let bad = 1.0 - cdf.at(300.0);
    assert!((0.05..0.40).contains(&bad), "heavy-jitter fraction {bad}");
}

#[test]
fn transport_split_is_roughly_half_and_half() {
    let data = campaign();
    let total = data.played().count();
    let udp = data
        .played()
        .filter(|r| r.metrics.protocol == TransportKind::Udp)
        .count();
    let frac = udp as f64 / total as f64;
    // Paper: ~56% UDP / 44% TCP.
    assert!((0.38..0.70).contains(&frac), "UDP fraction {frac}");
}

#[test]
fn udp_bandwidth_tracks_tcp_bandwidth() {
    let data = campaign();
    let mean_bw = |udp: bool| {
        let v: Vec<f64> = data
            .played()
            .filter(|r| (r.metrics.protocol == TransportKind::Udp) == udp)
            .map(|r| r.metrics.bandwidth_kbps)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let (udp, tcp) = (mean_bw(true), mean_bw(false));
    // Figure 18: comparable means (application-layer congestion control).
    assert!(
        udp / tcp > 0.5 && udp / tcp < 2.0,
        "udp {udp} kbps vs tcp {tcp} kbps"
    );
}

#[test]
fn australia_nz_users_see_the_worst_frame_rates() {
    let data = campaign();
    let below3 = |region: UserRegion| {
        let v: Vec<f64> = data
            .played()
            .filter(|r| r.user_region == region)
            .map(|r| r.metrics.frame_rate)
            .collect();
        v.iter().filter(|f| **f < 3.0).count() as f64 / v.len().max(1) as f64
    };
    let aus = below3(UserRegion::AustraliaNz);
    let europe = below3(UserRegion::Europe);
    // Figure 15's ordering.
    assert!(aus > europe, "aus/nz {aus} vs europe {europe}");
}

#[test]
fn ratings_center_near_five() {
    let data = campaign();
    let ratings: Vec<f64> = data.rated().map(|r| f64::from(r.rating.unwrap())).collect();
    assert!(ratings.len() > 30, "enough rated clips: {}", ratings.len());
    let mean = ratings.iter().sum::<f64>() / ratings.len() as f64;
    assert!((3.5..6.5).contains(&mean), "mean rating {mean}");
}

#[test]
fn every_figure_renders_from_campaign_data() {
    let data = campaign();
    let figures = all_figures(&data);
    assert_eq!(figures.len(), 26);
    for f in &figures {
        assert!(!f.body.trim().is_empty(), "{} is empty", f.id);
    }
    // Spot-check one known body.
    let f16 = figure("fig16", &data).unwrap();
    assert!(f16.body.contains("UDP") && f16.body.contains("TCP"));
}

#[test]
fn campaign_is_deterministic() {
    let a = campaign();
    let b = campaign();
    assert_eq!(a.records().len(), b.records().len());
    for (x, y) in a.records().iter().zip(b.records()) {
        assert_eq!(x.metrics, y.metrics);
    }
}
