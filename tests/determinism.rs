//! The headline invariant of the plan/execute split: campaign output is
//! bit-identical for every worker count. A figure regenerated with
//! `--jobs 8` must match one regenerated with `--jobs 1` byte for byte —
//! both the streaming aggregates every figure is computed from and the
//! opt-in retained records.

use rv_study::{run_campaign, run_campaign_with_records, StudyParams};

fn params(jobs: usize) -> StudyParams {
    StudyParams {
        scale: 0.04,
        jobs,
        ..StudyParams::default()
    }
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let serial = run_campaign_with_records(params(1)).unwrap();
    assert!(!serial.records().is_empty());
    for jobs in [4, 8] {
        let parallel = run_campaign_with_records(params(jobs)).unwrap();
        // The streaming aggregates are the primary output: merged across
        // workers in canonical order, they must be *equal*, not just
        // statistically close.
        assert_eq!(
            serial.aggregates, parallel.aggregates,
            "aggregates differ at jobs={jobs}"
        );
        assert_eq!(
            serial.records().len(),
            parallel.records().len(),
            "record count differs at jobs={jobs}"
        );
        assert_eq!(serial.participants, parallel.participants);
        assert_eq!(serial.excluded_users, parallel.excluded_users);
        for (i, (s, p)) in serial.records().iter().zip(parallel.records()).enumerate() {
            assert_eq!(s.user_id, p.user_id, "record {i} user at jobs={jobs}");
            assert_eq!(s.server_name, p.server_name, "record {i} server");
            assert_eq!(s.clip_name, p.clip_name, "record {i} clip");
            assert_eq!(s.available, p.available, "record {i} availability");
            assert_eq!(s.metrics, p.metrics, "record {i} metrics at jobs={jobs}");
            assert_eq!(s.rating, p.rating, "record {i} rating at jobs={jobs}");
            assert_eq!(s.counters, p.counters, "record {i} counters at jobs={jobs}");
        }
        // Campaign-wide counter totals merge associatively: the same
        // totals whatever the worker count.
        assert_eq!(
            serial.summary.counters, parallel.summary.counters,
            "counter totals differ at jobs={jobs}"
        );
        // The summary reflects the executor that actually ran.
        assert_eq!(parallel.summary.workers, jobs);
        assert_eq!(
            parallel.summary.per_worker.iter().sum::<usize>(),
            parallel.records().len()
        );
    }
}

#[test]
fn streaming_aggregates_are_identical_across_worker_counts() {
    // Same invariant on the constant-memory path, where no records exist
    // to compare: the aggregates themselves carry the bit-identity.
    let serial = run_campaign(params(1)).unwrap();
    assert!(serial.records.is_none(), "streaming path retained records");
    for jobs in [4, 8] {
        let parallel = run_campaign(params(jobs)).unwrap();
        assert_eq!(
            serial.aggregates, parallel.aggregates,
            "streaming aggregates differ at jobs={jobs}"
        );
        assert_eq!(
            serial.summary.counters, parallel.summary.counters,
            "streaming counter totals differ at jobs={jobs}"
        );
    }
    // The totals are not vacuously equal: a fault-free campaign still
    // delivers packets and (on lossy paths) retransmits.
    use rv_sim::Counter;
    assert!(serial.summary.counters.get(Counter::PacketsDelivered) > 0);
}

#[test]
fn seed_and_scale_select_the_data_not_the_executor() {
    // Different seeds must differ (the invariant is not vacuous)...
    let a = run_campaign_with_records(params(4)).unwrap();
    let b = run_campaign_with_records(StudyParams {
        seed: 0xBEEF,
        ..params(4)
    })
    .unwrap();
    let a_played: Vec<f64> = a.played().map(|r| r.metrics.frame_rate).collect();
    let b_played: Vec<f64> = b.played().map(|r| r.metrics.frame_rate).collect();
    assert_ne!(a_played, b_played);
    assert_ne!(a.aggregates, b.aggregates);
    // ...and a parallel re-run of the same seed must not.
    let c = run_campaign_with_records(params(4)).unwrap();
    let c_played: Vec<f64> = c.played().map(|r| r.metrics.frame_rate).collect();
    assert_eq!(a_played, c_played);
    assert_eq!(a.aggregates, c.aggregates);
}

fn faulted_params(jobs: usize) -> StudyParams {
    StudyParams {
        faults: rv_sim::FaultScenario::default_on(),
        ..params(jobs)
    }
}

#[test]
fn faulted_campaign_is_bit_identical_across_worker_counts() {
    let serial = run_campaign_with_records(faulted_params(1)).unwrap();
    for jobs in [4, 8] {
        let parallel = run_campaign_with_records(faulted_params(jobs)).unwrap();
        assert_eq!(
            serial.aggregates, parallel.aggregates,
            "faulted aggregates differ at jobs={jobs}"
        );
        assert_eq!(serial.records().len(), parallel.records().len());
        for (i, (s, p)) in serial.records().iter().zip(parallel.records()).enumerate() {
            assert_eq!(s.metrics, p.metrics, "record {i} metrics at jobs={jobs}");
            assert_eq!(s.rating, p.rating, "record {i} rating at jobs={jobs}");
        }
        assert_eq!(
            serial.summary.counters, parallel.summary.counters,
            "faulted counter totals differ at jobs={jobs}"
        );
    }
    // Fault-only counters register under the default-on scenario.
    use rv_sim::Counter;
    assert!(serial.summary.counters.get(Counter::DropsOutage) > 0);
    assert!(serial.summary.counters.get(Counter::TcpRetransmits) > 0);
    // The scenario actually bites: the fault-only failure classes appear
    // and at least one session limped home through retry or fallback.
    let report = serial.failure_report();
    let count = |label: &str| {
        report
            .outcomes
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0, |(_, c)| *c)
    };
    let hard_failures =
        count("timed-out") + count("server-down") + count("starved") + count("aborted");
    assert!(hard_failures > 0, "outcomes: {:?}", report.outcomes);
    assert!(
        report.retried + report.fallbacks > 0,
        "no session retried or fell back"
    );
}

#[test]
fn zero_rate_fault_scenario_matches_fault_free_campaign() {
    // An *enabled* scenario whose rates are all zero must generate empty
    // plans and reproduce the fault-free campaign bit for bit: arming
    // the fault machinery costs nothing when no fault fires.
    let zero = StudyParams {
        faults: rv_sim::FaultScenario {
            enabled: true,
            ..rv_sim::FaultScenario::off()
        },
        ..params(4)
    };
    let clean = run_campaign_with_records(params(4)).unwrap();
    let armed = run_campaign_with_records(zero).unwrap();
    assert_eq!(clean.aggregates, armed.aggregates);
    assert_eq!(clean.records().len(), armed.records().len());
    for (c, a) in clean.records().iter().zip(armed.records()) {
        assert_eq!(c.metrics, a.metrics);
        assert_eq!(c.rating, a.rating);
    }
}
