//! The headline invariant of the plan/execute split: campaign output is
//! bit-identical for every worker count. A figure regenerated with
//! `--jobs 8` must match one regenerated with `--jobs 1` byte for byte.

use rv_study::{run_campaign, StudyParams};

fn params(jobs: usize) -> StudyParams {
    StudyParams {
        scale: 0.04,
        jobs,
        ..StudyParams::default()
    }
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let serial = run_campaign(params(1));
    assert!(!serial.records.is_empty());
    for jobs in [4, 8] {
        let parallel = run_campaign(params(jobs));
        assert_eq!(
            serial.records.len(),
            parallel.records.len(),
            "record count differs at jobs={jobs}"
        );
        assert_eq!(serial.participants, parallel.participants);
        assert_eq!(serial.excluded_users, parallel.excluded_users);
        for (i, (s, p)) in serial.records.iter().zip(&parallel.records).enumerate() {
            assert_eq!(s.user_id, p.user_id, "record {i} user at jobs={jobs}");
            assert_eq!(s.server_name, p.server_name, "record {i} server");
            assert_eq!(s.clip_name, p.clip_name, "record {i} clip");
            assert_eq!(s.available, p.available, "record {i} availability");
            assert_eq!(s.metrics, p.metrics, "record {i} metrics at jobs={jobs}");
            assert_eq!(s.rating, p.rating, "record {i} rating at jobs={jobs}");
        }
        // The summary reflects the executor that actually ran.
        assert_eq!(parallel.summary.workers, jobs);
        assert_eq!(
            parallel.summary.per_worker.iter().sum::<usize>(),
            parallel.records.len()
        );
    }
}

#[test]
fn seed_and_scale_select_the_data_not_the_executor() {
    // Different seeds must differ (the invariant is not vacuous)...
    let a = run_campaign(params(4));
    let b = run_campaign(StudyParams {
        seed: 0xBEEF,
        ..params(4)
    });
    let a_played: Vec<f64> = a.played().map(|r| r.metrics.frame_rate).collect();
    let b_played: Vec<f64> = b.played().map(|r| r.metrics.frame_rate).collect();
    assert_ne!(a_played, b_played);
    // ...and a parallel re-run of the same seed must not.
    let c = run_campaign(params(4));
    let c_played: Vec<f64> = c.played().map(|r| r.metrics.frame_rate).collect();
    assert_eq!(a_played, c_played);
}
