//! The gateway-tier contract: replica clusters, capacity-based
//! admission, and crash failover.
//!
//! Three layers of guarantees. World level: a crash of the serving
//! replica degrades to a played-through-failover session when a healthy
//! replica exists, and exhausting the replica list degrades to the
//! classic `ServerDown`. Campaign level: replica clusters survive the
//! crash scenario that kills the single-server study, admission rejects
//! surface as their own outcome, and every gateway configuration stays
//! bit-identical across worker counts. Baseline level: the default
//! params (replicas=1, sticky, no capacity) never touch the gateway
//! machinery — no gateway events, every session served by replica 0.

use rv_media::{Clip, ContentKind};
use rv_sim::{Counter, FaultPlan, FaultScenario, ServerCrash, SimDuration, SimRng, SimTime};
use rv_study::{
    build_population, build_session_world_gw, run_campaign, run_campaign_with_records,
    server_roster, ConnectionClass, GatewayPolicy, GatewaySpec, StudyParams, UserProfile,
};
use rv_tracer::{SessionOutcome, WorldScratch};

fn dsl_user(pop: &rv_study::Population) -> &UserProfile {
    pop.participants
        .iter()
        .find(|u| {
            u.connection == ConnectionClass::DslCable && u.firewall == rv_rtsp::FirewallPolicy::Open
        })
        .expect("some open DSL user")
}

fn spec(replicas: u8, policy: GatewayPolicy) -> GatewaySpec {
    GatewaySpec {
        replicas,
        policy,
        capacity: 0,
        seed: 1,
    }
}

/// A crash of one replica with no restart, scheduled before the session.
fn dead_replica(replica: u8) -> ServerCrash {
    ServerCrash {
        at: SimTime::ZERO,
        restart_after: None,
        replica,
    }
}

#[test]
fn crash_failover_recovers_on_a_healthy_replica() {
    let mut rng = SimRng::seed_from_u64(1);
    let pop = build_population(&mut rng, 1.0);
    let user = dsl_user(&pop);
    let roster = server_roster();
    let site = &roster[9]; // US/CNN
    let clip = Clip::new("t.rm", SimDuration::from_secs(240), ContentKind::News);

    // Replica 0 (the sticky first choice) is dead from t=0; replica 1 is
    // healthy. The classic study ends in ServerDown here — the gateway
    // client must instead hop and play the clip from replica 1.
    let faults = FaultPlan {
        server_crashes: vec![dead_replica(0)],
        ..FaultPlan::none()
    };
    let gw = spec(2, GatewayPolicy::Sticky);
    let mut scratch = WorldScratch::default();
    let mut world = build_session_world_gw(
        user,
        site,
        &clip,
        SimDuration::from_secs(30),
        42,
        &faults,
        Some(&gw),
        &mut scratch,
    );
    let m = world.run(SimTime::from_secs(150));
    assert!(
        matches!(m.outcome, SessionOutcome::PlayedDegraded { .. }),
        "outcome {:?}",
        m.outcome
    );
    assert_eq!(
        m.served_replica, 1,
        "session must end on the healthy replica"
    );
    let counters = world.counters();
    assert!(counters.get(Counter::GatewayRedirects) >= 1);
    assert!(counters.get(Counter::Failovers) >= 1);
    assert!(m.frames_played > 30, "played {}", m.frames_played);
}

#[test]
fn failover_exhaustion_degrades_to_server_down() {
    let mut rng = SimRng::seed_from_u64(1);
    let pop = build_population(&mut rng, 1.0);
    let user = dsl_user(&pop);
    let roster = server_roster();
    let site = &roster[9];
    let clip = Clip::new("t.rm", SimDuration::from_secs(240), ContentKind::News);

    // Every replica dead, no restarts: the client walks the whole order,
    // runs out of hops, and the session fails exactly like the classic
    // single-server crash.
    let faults = FaultPlan {
        server_crashes: vec![dead_replica(0), dead_replica(1)],
        ..FaultPlan::none()
    };
    let gw = spec(2, GatewayPolicy::Sticky);
    let mut scratch = WorldScratch::default();
    let m = build_session_world_gw(
        user,
        site,
        &clip,
        SimDuration::from_secs(30),
        42,
        &faults,
        Some(&gw),
        &mut scratch,
    )
    .run(SimTime::from_secs(150));
    assert_eq!(m.outcome, SessionOutcome::ServerDown);
}

fn faulted(replicas: u8, jobs: usize) -> StudyParams {
    StudyParams {
        scale: 0.05,
        jobs,
        faults: FaultScenario::default_on(),
        replicas,
        gateway: GatewayPolicy::NearestHealthy,
        ..StudyParams::default()
    }
}

#[test]
fn replica_clusters_survive_crashes_that_kill_the_single_server() {
    let single = run_campaign(faulted(1, 1)).unwrap();
    let cluster = run_campaign(faulted(2, 1)).unwrap();
    let down = |d: &rv_study::StudyData| d.aggregates.failures.outcomes.get("server-down").copied();
    let single_down = down(&single).unwrap_or(0);
    let cluster_down = down(&cluster).unwrap_or(0);
    assert!(
        single_down > 0,
        "crash scenario never killed the single-server study"
    );
    assert!(
        cluster_down < single_down,
        "replicas=2 must shed server-down failures: {cluster_down} vs {single_down}"
    );
    assert!(cluster.aggregates.played >= single.aggregates.played);
    // The cluster actually spreads load: someone was served by replica 1.
    let spread = cluster
        .aggregates
        .replica_sessions
        .get(&1)
        .copied()
        .unwrap_or(0);
    assert!(spread > 0, "no session served by replica 1");
}

#[test]
fn gateway_campaigns_are_bit_identical_across_worker_counts() {
    for faults_on in [true, false] {
        let mut base = faulted(2, 1);
        if !faults_on {
            base.faults = FaultScenario::off();
        }
        let serial = run_campaign_with_records(base).unwrap();
        for jobs in [4, 8] {
            let parallel = run_campaign_with_records(StudyParams { jobs, ..base }).unwrap();
            assert_eq!(
                serial.aggregates, parallel.aggregates,
                "gateway aggregates differ at jobs={jobs} faults={faults_on}"
            );
            assert_eq!(
                serial.summary.counters, parallel.summary.counters,
                "gateway counter totals differ at jobs={jobs} faults={faults_on}"
            );
            for (i, (s, p)) in serial.records().iter().zip(parallel.records()).enumerate() {
                assert_eq!(s.metrics, p.metrics, "record {i} at jobs={jobs}");
            }
        }
    }
}

#[test]
fn admission_rejects_surface_as_their_own_outcome() {
    let params = StudyParams {
        scale: 0.05,
        replicas: 2,
        gateway: GatewayPolicy::LeastLoaded,
        capacity: 2,
        ..StudyParams::default()
    };
    let data = run_campaign(params).unwrap();
    let rejected = data
        .aggregates
        .failures
        .outcomes
        .get("rejected")
        .copied()
        .unwrap_or(0);
    assert!(rejected > 0, "capacity=2 never filled a whole cluster");
    assert!(data.summary.counters.get(Counter::AdmissionRejects) >= rejected);
    // Rejection is admission, not unavailability or a crash: the classic
    // failure classes don't absorb it.
    assert!(!data
        .aggregates
        .failures
        .outcomes
        .contains_key("server-down"));
}

#[test]
fn default_params_never_touch_the_gateway() {
    let data = run_campaign(StudyParams {
        scale: 0.04,
        ..StudyParams::default()
    })
    .unwrap();
    // Every played session is served by replica 0 and no gateway counter
    // ever fires — the knob at its default is the classic study.
    assert_eq!(
        data.aggregates
            .replica_sessions
            .keys()
            .copied()
            .collect::<Vec<u8>>(),
        vec![0]
    );
    assert_eq!(data.summary.counters.get(Counter::GatewayRedirects), 0);
    assert_eq!(data.summary.counters.get(Counter::Failovers), 0);
    assert_eq!(data.summary.counters.get(Counter::AdmissionRejects), 0);
    assert!(data.aggregates.failover_recovery.is_empty());
}
