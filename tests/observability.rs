//! The observability contract: the flight recorder is a pure observer.
//! Arming it changes nothing — dumps, aggregates, and counters stay bit
//! identical — and a faulted trace actually shows the session's story
//! (outage, retransmits, rebuffer, rung switches, outcome) in both export
//! formats.

use rv_sim::trace::{self, TraceEvent};
use rv_sim::{Counter, FaultScenario, SimTime};
use rv_study::{
    plan_campaign, run_campaign_with_records, trace_session, GatewayPolicy, StudyParams, TraceError,
};

fn params() -> StudyParams {
    StudyParams {
        scale: 0.04,
        faults: FaultScenario::default_on(),
        ..StudyParams::default()
    }
}

/// Planned, available, faulted (user, clip) keys under `params`, in plan
/// order. With `need_outage`, only jobs that schedule a link outage.
fn faulted_keys(params: StudyParams, need_outage: bool) -> Vec<(u32, String)> {
    let plan = plan_campaign(params);
    let mut keys = Vec::new();
    for user_idx in 0..plan.num_users() {
        for job in plan.user_jobs(user_idx) {
            if job.available
                && !job.fault_plan.is_empty()
                && (!need_outage || !job.fault_plan.link_outages.is_empty())
            {
                keys.push((job.user_id, plan.clip_names[job.playlist_slot].to_string()));
            }
        }
    }
    keys
}

fn faulted_key(params: StudyParams) -> Option<(u32, String)> {
    faulted_keys(params, false).into_iter().next()
}

#[test]
fn tracing_is_a_pure_observer_of_the_campaign() {
    // Baseline campaign with the recorder disarmed.
    let before = run_campaign_with_records(params()).unwrap();
    // Arm the recorder and replay one session through it.
    let (user_id, clip) = faulted_key(params()).expect("no faulted session at this scale");
    let traced = trace_session(params(), user_id, &clip).unwrap();
    assert!(traced.faulted);
    assert!(!trace::active(), "recorder left armed after trace_session");
    // The campaign after tracing is bit-identical to the one before:
    // recording neither draws randomness nor perturbs simulation state.
    let after = run_campaign_with_records(params()).unwrap();
    assert_eq!(before.aggregates, after.aggregates);
    assert_eq!(before.summary.counters, after.summary.counters);
    for (b, a) in before.records().iter().zip(after.records()) {
        assert_eq!(b.metrics, a.metrics);
        assert_eq!(b.counters, a.counters);
    }
    // And the traced session reported the very counters the campaign
    // recorded for that (user, clip) row.
    let row = before
        .records()
        .iter()
        .find(|r| r.user_id == user_id && r.clip_name.as_ref() == clip)
        .expect("traced session missing from campaign records");
    assert_eq!(traced.counters, row.counters);
    assert_eq!(traced.metrics, row.metrics);
}

#[test]
fn faulted_trace_tells_the_sessions_story() {
    // A scheduled outage only shows up if the session is still running
    // when it strikes, so walk the outage-bearing keys until one is.
    let keys = faulted_keys(params(), true);
    assert!(!keys.is_empty(), "no outage-faulted session at this scale");
    let traced = keys
        .iter()
        .map(|(user_id, clip)| trace_session(params(), *user_id, clip).unwrap())
        .find(|t| t.records.iter().any(|r| r.ev.name() == "link_down"))
        .expect("no traced session caught its outage");

    let has = |name: &str| traced.records.iter().any(|r| r.ev.name() == name);
    assert!(has("session_begin"));
    assert!(has("session_end"));
    // Timestamps are monotone non-decreasing after finish().
    assert!(traced.records.windows(2).all(|w| w[0].at <= w[1].at));

    // JSONL: one object per line with the two mandatory fields.
    let jsonl = traced.to_jsonl();
    assert_eq!(jsonl.lines().count(), traced.records.len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"t_us\":"), "bad line: {line}");
        assert!(line.contains("\"ev\":\""), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
    }

    // Chrome trace: well-formed envelope with balanced spans.
    let chrome = traced.to_chrome_trace();
    assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\""));
    let begins = chrome.matches("\"ph\":\"B\"").count();
    let ends = chrome.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends, "unbalanced spans in the chrome export");
}

#[test]
fn trace_counters_match_the_recorded_timeline() {
    // For the event families that mirror a counter one-to-one, the
    // timeline and the counter registry must agree exactly.
    let (user_id, clip) = faulted_key(params()).expect("no faulted session at this scale");
    let traced = trace_session(params(), user_id, &clip).unwrap();
    let count = |name: &str| {
        traced
            .records
            .iter()
            .filter(|r| r.ev.name() == name)
            .count() as u64
    };
    assert_eq!(
        traced.counters.get(Counter::ServerCrashes),
        count("server_crash")
    );
    if traced.counters.get(Counter::SessionRetries) == 0 {
        // Retry-free sessions mirror one-to-one. (A retry replaces the
        // player, so the rebuffer counters cover the final attempt while
        // the timeline keeps every attempt's events — see harness docs.)
        assert_eq!(
            traced.counters.get(Counter::TcpRetransmits),
            count("tcp_retransmit")
        );
        assert_eq!(
            traced.counters.get(Counter::RebufferEvents),
            count("rebuffer_start")
        );
    } else {
        assert!(count("tcp_retransmit") >= traced.counters.get(Counter::TcpRetransmits));
        assert!(count("rebuffer_start") >= traced.counters.get(Counter::RebufferEvents));
    }
    let drops: u64 = traced
        .records
        .iter()
        .filter(|r| matches!(r.ev, TraceEvent::PacketDrop { .. }))
        .count() as u64;
    assert_eq!(
        traced.counters.get(Counter::DropsLoss)
            + traced.counters.get(Counter::DropsQueue)
            + traced.counters.get(Counter::DropsOutage),
        drops
    );
}

#[test]
fn gateway_trace_tells_the_failover_story() {
    // Every replicated session opens with a gateway_route event naming
    // the chosen replica; a crash on the serving replica shows up as a
    // gateway_redirect carrying the hop's reason. Walk the crash-bearing
    // keys until one session actually hopped.
    let params = StudyParams {
        scale: 0.05,
        faults: FaultScenario::default_on(),
        replicas: 2,
        gateway: GatewayPolicy::Sticky,
        ..StudyParams::default()
    };
    let plan = plan_campaign(params);
    let mut crash_keys = Vec::new();
    for user_idx in 0..plan.num_users() {
        for job in plan.user_jobs(user_idx) {
            if job.available && !job.fault_plan.server_crashes.is_empty() {
                crash_keys.push((job.user_id, plan.clip_names[job.playlist_slot].to_string()));
            }
        }
    }
    assert!(
        !crash_keys.is_empty(),
        "no crash-faulted session at this scale"
    );

    let mut redirected = None;
    for (user_id, clip) in &crash_keys {
        let traced = trace_session(params, *user_id, clip).unwrap();
        assert!(
            traced
                .records
                .iter()
                .any(|r| r.ev.name() == "gateway_route"),
            "replicated session traced without a gateway_route event"
        );
        if traced
            .records
            .iter()
            .any(|r| r.ev.name() == "gateway_redirect")
        {
            redirected = Some((*user_id, clip.clone(), traced));
            break;
        }
    }
    let (user_id, clip, traced) =
        redirected.expect("no crash-bearing session ever hopped replicas");

    // The timeline and the counter registry agree on the hop count, and
    // the JSONL export spells out where the session went and why.
    let redirects = traced
        .records
        .iter()
        .filter(|r| r.ev.name() == "gateway_redirect")
        .count() as u64;
    assert_eq!(traced.counters.get(Counter::GatewayRedirects), redirects);
    let jsonl = traced.to_jsonl();
    let line = jsonl
        .lines()
        .find(|l| l.contains("\"ev\":\"gateway_redirect\""))
        .expect("redirect missing from the JSONL export");
    for field in ["\"from\":", "\"to\":", "\"reason\":\""] {
        assert!(line.contains(field), "bad redirect line: {line}");
    }
    let chrome = traced.to_chrome_trace();
    let begins = chrome.matches("\"ph\":\"B\"").count();
    let ends = chrome.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends, "unbalanced spans in the chrome export");

    // Tracing a replicated session is still a pure observation of the
    // campaign: the record for that key carries the same metrics.
    let data = run_campaign_with_records(params).unwrap();
    let row = data
        .records()
        .iter()
        .find(|r| r.user_id == user_id && r.clip_name.as_ref() == clip)
        .expect("traced session missing from campaign records");
    assert_eq!(traced.metrics, row.metrics);
    assert_eq!(traced.counters, row.counters);

    // And with the knob at its default the same key traces without any
    // gateway vocabulary at all — the schema of the classic study is
    // untouched.
    let classic = trace_session(
        StudyParams {
            replicas: 1,
            ..params
        },
        user_id,
        &clip,
    )
    .unwrap();
    assert!(classic
        .records
        .iter()
        .all(|r| !r.ev.name().starts_with("gateway")));
}

#[test]
fn unknown_trace_keys_are_typed_errors_with_nearby_keys() {
    let err = trace_session(params(), 40_000, "anything.rm").unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, TraceError::UnknownUser { .. }),
        "wrong error: {msg}"
    );
    assert!(msg.contains("nearby valid ids"), "unhelpful message: {msg}");

    let plan = plan_campaign(params());
    let user_id = plan.population.participants[0].id;
    let err = trace_session(params(), user_id, "definitely-not-a-clip.rm").unwrap_err();
    let msg = err.to_string();
    match err {
        TraceError::UnknownClip { available, .. } => {
            assert!(!available.is_empty());
            assert!(msg.contains("their clips"), "unhelpful message: {msg}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn recorder_is_reentrant_per_thread() {
    // start/emit/finish on this thread; a finished recorder drops its
    // records and a fresh start sees an empty sink.
    trace::start();
    trace::emit(SimTime::ZERO, || TraceEvent::RebufferStart);
    let first = trace::finish();
    assert_eq!(first.len(), 1);
    trace::start();
    let second = trace::finish();
    assert!(second.is_empty(), "stale records leaked across sessions");
    assert!(!trace::active());
    // Disarmed emit is a no-op, not a panic.
    trace::emit(SimTime::ZERO, || TraceEvent::RebufferStart);
}
