//! Cross-crate integration below the campaign level: protocol machinery,
//! media pipeline, and adaptation behavior wired through real networks.

use rv_media::{Clip, ContentKind, SureStream};
use rv_net::{CongestionParams, LinkParams};
use rv_rtsp::TransportPreference;
use rv_server::ServerConfig;
use rv_sim::{SimDuration, SimTime};
use rv_tracer::{two_host_world, ClientConfig, SessionMetrics};

/// Builds and runs one session over the given link, returning metrics and
/// the final server stats.
fn run(
    params: LinkParams,
    clip: Clip,
    seed: u64,
    cfg_fn: impl FnOnce(&mut ClientConfig, &mut ServerConfig),
) -> (SessionMetrics, rv_server::ServerStats) {
    let mut world = two_host_world(params, clip, seed, cfg_fn);
    let metrics = world.run(SimTime::from_secs(200));
    (metrics, world.server.stats())
}

fn broadband() -> LinkParams {
    LinkParams::lan()
        .rate(500_000.0)
        .delay(SimDuration::from_millis(40))
        .queue(64 * 1024)
}

#[test]
fn surestream_outperforms_single_rate_on_constrained_path() {
    // A 100 kbps path. SureStream steps down to the 80 kbps rung; a
    // 300 kbps single-rate clip must be thinned to a fraction of its frames.
    let constrained = LinkParams::lan()
        .rate(100_000.0)
        .delay(SimDuration::from_millis(50))
        .queue(32 * 1024);
    let adaptive = Clip::new("a.rm", SimDuration::from_secs(300), ContentKind::News);
    let single = Clip::with_ladder(
        "s.rm",
        SimDuration::from_secs(300),
        ContentKind::News,
        SureStream::single(300_000),
    );
    let set_bw = |c: &mut ClientConfig, _: &mut ServerConfig| {
        c.max_bandwidth_bps = 112_000;
    };
    let (m_adaptive, _) = run(constrained, adaptive, 11, set_bw);
    let (m_single, stats_single) = run(constrained, single, 11, set_bw);
    assert!(
        m_adaptive.frame_rate > m_single.frame_rate * 1.5,
        "adaptive {} vs single {}",
        m_adaptive.frame_rate,
        m_single.frame_rate
    );
    assert!(
        stats_single.frames_thinned > 0,
        "single-rate must thin on a constrained path"
    );
}

#[test]
fn fec_recovers_frames_on_lossy_udp_path() {
    let lossy = LinkParams::lan()
        .rate(400_000.0)
        .delay(SimDuration::from_millis(40))
        .loss(0.02)
        .queue(64 * 1024);
    let clip = Clip::new("f.rm", SimDuration::from_secs(300), ContentKind::News);
    let (with_fec, _) = run(lossy, clip.clone(), 13, |_, s| s.fec_group = 8);
    let (without_fec, _) = run(lossy, clip, 13, |_, s| s.fec_group = 0);
    assert!(with_fec.frames_recovered > 0, "FEC should recover frames");
    assert_eq!(without_fec.frames_recovered, 0);
    assert!(
        with_fec.frames_played >= without_fec.frames_played,
        "FEC {} vs none {}",
        with_fec.frames_played,
        without_fec.frames_played
    );
}

#[test]
fn congested_path_triggers_downswitch() {
    let congested = LinkParams::lan()
        .rate(350_000.0)
        .delay(SimDuration::from_millis(60))
        .queue(48 * 1024)
        .cross_traffic(
            CongestionParams {
                mean_level: 0.5,
                variability: 0.25,
                mean_epoch: SimDuration::from_secs(5),
                burst_prob: 0.2,
            },
            0.05,
        );
    let clip = Clip::new("c.rm", SimDuration::from_secs(300), ContentKind::Sports);
    let (m, stats) = run(congested, clip, 17, |c, _| {
        c.max_bandwidth_bps = 384_000;
    });
    assert!(
        stats.switches_down > 0,
        "congestion must force a rung switch (stats: {stats:?})"
    );
    assert!(m.frames_played > 50, "stream survives: {}", m.frames_played);
}

#[test]
fn prebuffer_trades_startup_delay_for_smoothness() {
    // Pure delay variance: heavy cross traffic but NO loss, so the rate
    // controller never crashes and the comparison isolates what the buffer
    // does — absorb capacity dips. (With loss in the mix, the deep sender's
    // higher fill rate triggers more rate-control episodes and the effect
    // inverts; see the ablation benches for that interaction.)
    // The queue must be deep enough (512 KiB ≈ 8 s at link rate) that the
    // deep sender's higher fill rate doesn't overflow it — queue drops
    // would re-introduce the rate-control confound this test excludes.
    let jittery = LinkParams::lan()
        .rate(500_000.0)
        .delay(SimDuration::from_millis(60))
        .queue(512 * 1024)
        .cross_traffic(CongestionParams::heavy(), 0.0);
    let clip = Clip::new("p.rm", SimDuration::from_secs(300), ContentKind::News);
    let deep = |c: &mut ClientConfig, s: &mut ServerConfig| {
        c.playout.prebuffer = SimDuration::from_secs(12);
        s.buffer_lead = SimDuration::from_secs(18);
        c.max_bandwidth_bps = 300_000;
    };
    let shallow = |c: &mut ClientConfig, s: &mut ServerConfig| {
        c.playout.prebuffer = SimDuration::from_secs(1);
        s.buffer_lead = SimDuration::from_secs(2);
        c.max_bandwidth_bps = 300_000;
    };
    // Any single seed can land on a lucky cross-traffic pattern for the
    // shallow buffer, so compare mean jitter across several seeds.
    let seeds = [19u64, 23, 29, 31, 37];
    let mut j_deep_total = 0.0;
    let mut j_shallow_total = 0.0;
    for seed in seeds {
        let (m_deep, _) = run(jittery, clip.clone(), seed, deep);
        let (m_shallow, _) = run(jittery, clip.clone(), seed, shallow);
        assert!(
            m_deep.startup_delay > m_shallow.startup_delay,
            "deep buffer starts later (seed {seed})"
        );
        j_deep_total += m_deep.jitter_ms.expect("jitter");
        j_shallow_total += m_shallow.jitter_ms.expect("jitter");
    }
    assert!(
        j_deep_total < j_shallow_total,
        "deep buffer smooths playout on average: {} vs {}",
        j_deep_total / seeds.len() as f64,
        j_shallow_total / seeds.len() as f64
    );
}

#[test]
fn transport_negotiation_end_to_end() {
    let clip = Clip::new("n.rm", SimDuration::from_secs(300), ContentKind::Talk);
    // Client forces TCP.
    let (m, _) = run(broadband(), clip.clone(), 23, |c, _| {
        c.transport_pref = TransportPreference::ForceTcp;
    });
    assert_eq!(m.protocol, rv_rtsp::TransportKind::Tcp);
    // Server refuses UDP.
    let (m, _) = run(broadband(), clip.clone(), 23, |_, s| {
        s.prefers_udp = false;
    });
    assert_eq!(m.protocol, rv_rtsp::TransportKind::Tcp);
    // Default: UDP.
    let (m, _) = run(broadband(), clip, 23, |_, _| {});
    assert_eq!(m.protocol, rv_rtsp::TransportKind::Udp);
}

#[test]
fn clip_duration_ends_short_sessions() {
    // A 20-second clip ends before the 60-second watch limit.
    let clip = Clip::new("short.rm", SimDuration::from_secs(20), ContentKind::News);
    let (m, _) = run(broadband(), clip, 29, |_, _| {});
    assert_eq!(m.outcome, rv_tracer::SessionOutcome::Played);
    // Session time ~= prebuffer + clip, clearly under the watch limit.
    assert!(
        m.session_time < SimDuration::from_secs(55),
        "session {} should end with the clip",
        m.session_time
    );
    assert!(m.frames_played > 50);
}
