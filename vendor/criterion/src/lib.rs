//! Minimal in-tree benchmark harness, API-compatible with the subset of
//! [criterion](https://docs.rs/criterion) this workspace uses.
//!
//! The real criterion crate cannot be built in the offline build
//! environment, so this shim provides the same surface — `Criterion`,
//! `criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotation — backed by a simple warmup-then-sample timing loop. It is
//! good enough to compare implementations on the same machine (the only
//! thing the repo's benches are used for); it does not do outlier
//! rejection or statistical regression testing.
//!
//! When `cargo test` runs a `harness = false` bench target it passes
//! `--test`; the shim detects that and skips all measurement so test runs
//! stay fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver. Construct with [`Criterion::default`].
pub struct Criterion {
    /// Skip measurement entirely (set when invoked as `--test`).
    skip: bool,
    /// Substring filter from the command line, if any.
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let skip = args.iter().any(|a| a == "--test" || a == "--list");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion {
            skip,
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, None, &id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// Throughput annotation attached to a group: scales reported time into
/// bytes/sec or elements/sec.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size;
        let throughput = self.throughput;
        let crit = &mut *self.criterion;
        let saved = crit.sample_size;
        if let Some(n) = sample_size {
            crit.sample_size = n;
        }
        run_one(crit, throughput, &full, f);
        crit.sample_size = saved;
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Number of iterations the closure must run when measuring.
    iters: u64,
    /// Measured elapsed time for `iters` iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness asks.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(criterion: &mut Criterion, throughput: Option<Throughput>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if criterion.skip || !criterion.matches(id) {
        return;
    }
    // Calibrate: grow the iteration count until one sample takes ~20 ms or
    // the workload is clearly long-running.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    // Measure.
    let samples = criterion.sample_size.max(2);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {}/s", human_bytes(n as f64 / median))
        }
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e6)
        }
        None => String::new(),
    };
    println!(
        "{id:<40} time: [{} {} {}]{extra}",
        human_time(lo),
        human_time(median),
        human_time(hi),
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.3} GiB", bps / (1u64 << 30) as f64)
    } else if bps >= 1e6 {
        format!("{:.3} MiB", bps / (1u64 << 20) as f64)
    } else {
        format!("{:.3} KiB", bps / 1024.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units() {
        assert!(human_time(2e-9).ends_with("ns"));
        assert!(human_time(2e-6).ends_with("us"));
        assert!(human_time(2e-3).ends_with("ms"));
        assert!(human_time(2.0).ends_with('s'));
        assert!(human_bytes(5e9).ends_with("GiB"));
    }
}
