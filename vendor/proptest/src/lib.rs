//! Minimal in-tree property-testing harness, API-compatible with the
//! subset of [proptest](https://docs.rs/proptest) this workspace uses.
//!
//! The real proptest crate cannot be built in the offline build
//! environment, so this shim provides the same surface — the `proptest!`
//! macro, `Strategy`, `any::<T>()`, `Just`, `prop_oneof!`, the
//! `prop::collection`/`prop::option`/`prop::bool` modules, and the
//! `prop_assert*` macros — backed by purely random generation from a
//! deterministic per-test RNG. It does not shrink failing inputs; a
//! failure report prints the generating seed so the case can be replayed
//! by pinning `PROPTEST_CASES`/`PROPTEST_SEED`.
//!
//! Each test runs `ProptestConfig::cases` random cases (default 64,
//! overridable via the `PROPTEST_CASES` environment variable). Case seeds
//! derive from a hash of the test name plus an optional `PROPTEST_SEED`,
//! so runs are reproducible by default and perturbable on demand.

#![forbid(unsafe_code)]

/// Harness configuration, accepted via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The generation RNG handed to strategies: SplitMix64, which is plenty
/// for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = n.wrapping_neg() % n;
        loop {
            let v = self.next_u64();
            if v >= zone {
                return v % n;
            }
        }
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no shrinking tree: `generate`
/// produces a value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy producing one fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Produces an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, e.g. `any::<u32>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: property tests here never want NaN storms.
        rng.unit() * 2e9 - 1e9
    }
}

// Ranges are strategies: `0u64..1_000` and `1.0f64..2.0`.
macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                ((lo as i128) + off as i128) as $t
            }
        }
    )+};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // rng.unit() is in [0, 1); use a closed-interval variant so
                // `hi` itself is reachable (endpoints matter for inclusive
                // ranges).
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    )+};
}

impl_range_strategy_float!(f32, f64);

// Tuples of strategies are strategies, e.g. `(1u32..3000, 0u64..5_000)`.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Collection, option, and bool strategy constructors, mirroring the
/// upstream `prop::` module tree.
pub mod prop {
    /// Strategies for collections of random length.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<T>` with lengths drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<T>` with sizes drawn from `len`.
        ///
        /// Sizes are best-effort: duplicate draws collapse, as upstream
        /// proptest also permits when the domain is small.
        pub fn btree_set<S>(element: S, len: std::ops::Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, len }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.len.clone().generate(rng).max(self.len.start);
                let mut out = std::collections::BTreeSet::new();
                // Bounded attempts so tiny domains cannot loop forever.
                for _ in 0..target.saturating_mul(8).max(8) {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.generate(rng));
                }
                out
            }
        }
    }

    /// Strategies for `Option<T>`.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<T>`: `None` about a quarter of the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Strategies for `bool`.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy for `bool`, `true` with probability `p`.
        pub fn weighted(p: f64) -> WeightedBool {
            WeightedBool { p }
        }

        /// See [`weighted`].
        pub struct WeightedBool {
            p: f64,
        }

        impl Strategy for WeightedBool {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.unit() < self.p
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a, used to derive per-test base seeds from the test path.
#[doc(hidden)]
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let user: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    h ^ user
}

/// Runs the body closure over `config.cases` generated cases.
#[doc(hidden)]
pub fn run_cases<F>(test_path: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let base = seed_for(test_path);
    for i in 0..u64::from(config.cases) {
        let mut rng = TestRng::new(base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        if let Err(msg) = case(&mut rng) {
            panic!("property failed at case {i} (base seed {base:#x}): {msg}");
        }
    }
}

/// Defines property tests. Mirrors proptest's macro of the same name for
/// the syntax this repo uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(x in 0u32..10, mut v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a config attribute.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                        let mut body = || -> ::std::result::Result<(), String> {
                            $body
                            Ok(())
                        };
                        body()
                    },
                );
            }
        )*
    };
    // Without a config attribute: use the default.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return Err(format!(
                "assertion failed: {} == {}",
                stringify!($lhs),
                stringify!($rhs)
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {}",
                stringify!($lhs),
                stringify!($rhs)
            ));
        }
    }};
}

/// Picks among strategies uniformly. Upstream supports weights; the
/// unweighted form is the only one this repo uses.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The strategy built by [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = Strategy::generate(&(-5i32..=5), &mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u8..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0u64..100, mut v in prop::collection::vec(any::<u8>(), 0..4)) {
            v.push(0);
            prop_assert!(x < 100);
            prop_assert_eq!(*v.last().unwrap(), 0);
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(b in prop::bool::weighted(1.0), o in prop::option::of(0u8..5)) {
            prop_assert!(b);
            if let Some(x) = o {
                prop_assert!(x < 5, "got {x}");
            }
        }
    }
}
